"""Tests for the low-level conv/im2col kernels, including gradient checks."""

import numpy as np
import pytest

from repro.nn import functional as F


def reference_conv2d(x, weight, bias, stride, padding):
    """Naive nested-loop convolution used as the ground truth."""
    n, c_in, h, w = x.shape
    c_out, _, kh, kw = weight.shape
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.zeros((n, c_out, out_h, out_w))
    for b in range(n):
        for o in range(c_out):
            for i in range(out_h):
                for j in range(out_w):
                    patch = xp[b, :, i * stride:i * stride + kh, j * stride:j * stride + kw]
                    out[b, o, i, j] = np.sum(patch * weight[o])
            if bias is not None:
                out[b, o] += bias[o]
    return out


class TestConvOutputSize:
    def test_basic(self):
        assert F.conv_output_size(8, 3, 1, 1) == 8
        assert F.conv_output_size(8, 3, 2, 1) == 4
        assert F.conv_output_size(7, 1, 1, 0) == 7

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)


class TestIm2col:
    def test_roundtrip_shapes(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols = F.im2col(x, (3, 3), 1, 1)
        assert cols.shape == (2 * 8 * 8, 3 * 9)

    def test_col2im_is_adjoint_of_im2col(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
        x = rng.normal(size=(2, 3, 6, 6))
        cols = F.im2col(x, (3, 3), 1, 1)
        y = rng.normal(size=cols.shape)
        lhs = np.sum(cols * y)
        rhs = np.sum(x * F.col2im(y, x.shape, (3, 3), 1, 1))
        assert np.isclose(lhs, rhs)

    def test_stride_two(self, rng):
        x = rng.normal(size=(1, 2, 8, 8))
        cols = F.im2col(x, (3, 3), 2, 1)
        assert cols.shape == (4 * 4, 2 * 9)


class TestConv2dForward:
    @pytest.mark.parametrize("stride,padding", [(1, 1), (2, 1), (1, 0), (2, 2)])
    def test_matches_reference(self, rng, stride, padding):
        x = rng.normal(size=(2, 3, 8, 8))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out, _ = F.conv2d_forward(x, w, b, stride, padding)
        ref = reference_conv2d(x, w, b, stride, padding)
        assert np.allclose(out, ref)

    def test_channel_mismatch_raises(self, rng):
        x = rng.normal(size=(1, 3, 8, 8))
        w = rng.normal(size=(4, 5, 3, 3))
        with pytest.raises(ValueError):
            F.conv2d_forward(x, w, None, 1, 1)

    def test_no_bias(self, rng):
        x = rng.normal(size=(1, 2, 6, 6))
        w = rng.normal(size=(3, 2, 3, 3))
        out, _ = F.conv2d_forward(x, w, None, 1, 1)
        ref = reference_conv2d(x, w, None, 1, 1)
        assert np.allclose(out, ref)


class TestConv2dBackward:
    def _numeric_grad(self, f, x, eps=1e-6):
        grad = np.zeros_like(x)
        flat = x.reshape(-1)
        gflat = grad.reshape(-1)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            plus = f()
            flat[i] = orig - eps
            minus = f()
            flat[i] = orig
            gflat[i] = (plus - minus) / (2 * eps)
        return grad

    def test_weight_gradient_matches_numeric(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        b = np.zeros(3)
        upstream = rng.normal(size=(1, 3, 5, 5))

        out, cols = F.conv2d_forward(x, w, b, 1, 1)
        _, grad_w, grad_b = F.conv2d_backward(upstream, cols, x.shape, w, 1, 1)

        def loss():
            o, _ = F.conv2d_forward(x, w, b, 1, 1)
            return float(np.sum(o * upstream))

        num_grad_w = self._numeric_grad(loss, w)
        assert np.allclose(grad_w, num_grad_w, atol=1e-4)
        assert np.allclose(grad_b, upstream.sum(axis=(0, 2, 3)))

    def test_input_gradient_matches_numeric(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        upstream = rng.normal(size=(1, 3, 5, 5))
        out, cols = F.conv2d_forward(x, w, None, 1, 1)
        grad_x, _, _ = F.conv2d_backward(upstream, cols, x.shape, w, 1, 1, with_bias=False)

        def loss():
            o, _ = F.conv2d_forward(x, w, None, 1, 1)
            return float(np.sum(o * upstream))

        num_grad_x = self._numeric_grad(loss, x)
        assert np.allclose(grad_x, num_grad_x, atol=1e-4)


class TestDepthwiseConv:
    def test_matches_per_channel_dense(self, rng):
        x = rng.normal(size=(2, 4, 6, 6))
        w = rng.normal(size=(4, 1, 3, 3))
        out, _ = F.depthwise_conv2d_forward(x, w, None, 1, 1)
        for c in range(4):
            dense, _ = F.conv2d_forward(x[:, c:c+1], w[c:c+1], None, 1, 1)
            assert np.allclose(out[:, c:c+1], dense)

    def test_backward_weight_gradient(self, rng):
        x = rng.normal(size=(1, 3, 5, 5))
        w = rng.normal(size=(3, 1, 3, 3))
        upstream = rng.normal(size=(1, 3, 5, 5))
        out, cols = F.depthwise_conv2d_forward(x, w, None, 1, 1)
        _, grad_w, _ = F.depthwise_conv2d_backward(upstream, cols, x.shape, w, 1, 1, with_bias=False)

        eps = 1e-6
        num = np.zeros_like(w)
        for idx in np.ndindex(w.shape):
            w[idx] += eps
            plus = float(np.sum(F.depthwise_conv2d_forward(x, w, None, 1, 1)[0] * upstream))
            w[idx] -= 2 * eps
            minus = float(np.sum(F.depthwise_conv2d_forward(x, w, None, 1, 1)[0] * upstream))
            w[idx] += eps
            num[idx] = (plus - minus) / (2 * eps)
        assert np.allclose(grad_w, num, atol=1e-4)

    def test_shape_mismatch_raises(self, rng):
        x = rng.normal(size=(1, 3, 5, 5))
        w = rng.normal(size=(4, 1, 3, 3))
        with pytest.raises(ValueError):
            F.depthwise_conv2d_forward(x, w, None, 1, 1)


class TestActivationHelpers:
    def test_softmax_sums_to_one(self, rng):
        x = rng.normal(size=(5, 7)) * 10
        s = F.softmax(x, axis=1)
        assert np.allclose(s.sum(axis=1), 1.0)
        assert (s >= 0).all()

    def test_log_softmax_consistency(self, rng):
        x = rng.normal(size=(4, 6))
        assert np.allclose(F.log_softmax(x), np.log(F.softmax(x)))

    def test_sigmoid_extreme_values_stable(self):
        x = np.array([-1e4, -10.0, 0.0, 10.0, 1e4])
        s = F.sigmoid(x)
        assert np.all(np.isfinite(s))
        assert np.isclose(s[2], 0.5)
        assert s[0] < 1e-4 and s[-1] > 1 - 1e-4


class TestIm2colBuffer:
    def test_out_buffer_reused(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        cols = F.im2col(x, (3, 3), 1, 1)
        buf = np.empty_like(cols)
        result = F.im2col(x, (3, 3), 1, 1, out=buf)
        assert result is buf
        np.testing.assert_array_equal(result, cols)

    def test_out_buffer_shape_checked(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        with pytest.raises(ValueError):
            F.im2col(x, (3, 3), 1, 1, out=np.empty((1, 1)))
        with pytest.raises(ValueError):
            F.im2col(x, (3, 3), 1, 1,
                     out=np.empty((2 * 6 * 6, 27), dtype=np.float32))

    def test_matches_naive_receptive_fields(self, rng):
        """Each row is one receptive field in (C, kh, kw) layout — checked
        against a direct loop over output positions."""
        x = rng.normal(size=(2, 3, 5, 7))
        stride, padding, k = 2, 1, 3
        cols = F.im2col(x, (k, k), stride, padding)
        xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        out_h = (5 + 2 * padding - k) // stride + 1
        out_w = (7 + 2 * padding - k) // stride + 1
        row = 0
        for n in range(2):
            for i in range(out_h):
                for j in range(out_w):
                    field = xp[n, :, i * stride:i * stride + k,
                               j * stride:j * stride + k]
                    np.testing.assert_array_equal(cols[row], field.reshape(-1))
                    row += 1
