"""Tests for loss functions and optimizers."""

import numpy as np
import pytest

from repro.nn.losses import BCEWithLogitsLoss, CrossEntropyLoss, MSELoss, SmoothL1Loss
from repro.nn.optim import SGD, Adam, AdamW
from repro.nn.tensor import Parameter


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss = CrossEntropyLoss()
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        targets = np.array([0, 1])
        assert loss.forward(logits, targets) < 1e-4

    def test_uniform_prediction_log_k(self):
        loss = CrossEntropyLoss()
        logits = np.zeros((4, 5))
        targets = np.array([0, 1, 2, 3])
        assert np.isclose(loss.forward(logits, targets), np.log(5))

    def test_gradient_numeric(self, rng):
        loss = CrossEntropyLoss()
        logits = rng.normal(size=(3, 4))
        targets = np.array([1, 0, 3])
        loss.forward(logits, targets)
        grad = loss.backward()

        eps = 1e-6
        num = np.zeros_like(logits)
        for idx in np.ndindex(logits.shape):
            logits[idx] += eps
            plus = loss.forward(logits, targets)
            logits[idx] -= 2 * eps
            minus = loss.forward(logits, targets)
            logits[idx] += eps
            num[idx] = (plus - minus) / (2 * eps)
        loss.forward(logits, targets)
        assert np.allclose(grad, num, atol=1e-5)

    def test_segmentation_shape(self, rng):
        loss = CrossEntropyLoss()
        logits = rng.normal(size=(2, 3, 4, 4))
        targets = rng.integers(0, 3, size=(2, 4, 4))
        value = loss.forward(logits, targets)
        assert np.isfinite(value)
        assert loss.backward().shape == logits.shape

    def test_label_smoothing_increases_uniformity(self, rng):
        logits = rng.normal(size=(8, 5)) * 3
        targets = rng.integers(0, 5, size=8)
        plain = CrossEntropyLoss().forward(logits, targets)
        smoothed = CrossEntropyLoss(label_smoothing=0.2).forward(logits, targets)
        assert smoothed != plain

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss(label_smoothing=1.0)


class TestOtherLosses:
    def test_mse_zero_for_equal(self, rng):
        x = rng.normal(size=(4, 4))
        loss = MSELoss()
        assert loss.forward(x, x.copy()) == 0.0

    def test_mse_gradient(self, rng):
        pred = rng.normal(size=(3, 2))
        target = rng.normal(size=(3, 2))
        loss = MSELoss()
        loss.forward(pred, target)
        assert np.allclose(loss.backward(), 2 * (pred - target) / pred.size)

    def test_smooth_l1_quadratic_then_linear(self):
        loss = SmoothL1Loss(beta=1.0)
        small = loss.forward(np.array([0.1]), np.array([0.0]))
        assert np.isclose(small, 0.005)
        large = loss.forward(np.array([5.0]), np.array([0.0]))
        assert np.isclose(large, 4.5)

    def test_bce_matches_manual(self):
        loss = BCEWithLogitsLoss()
        pred = np.array([0.0])
        target = np.array([1.0])
        assert np.isclose(loss.forward(pred, target), -np.log(0.5))


def _quadratic_descent(optimizer_cls, **kwargs):
    """Minimise ||x - 3||^2 and return the final parameter value."""
    param = Parameter(np.array([0.0]))
    opt = optimizer_cls([param], **kwargs)
    for _ in range(300):
        opt.zero_grad()
        param.accumulate_grad(2 * (param.value - 3.0))
        opt.step()
    return float(param.value[0])


class TestOptimizers:
    def test_sgd_converges(self):
        assert abs(_quadratic_descent(SGD, lr=0.05) - 3.0) < 1e-3

    def test_sgd_momentum_converges(self):
        assert abs(_quadratic_descent(SGD, lr=0.02, momentum=0.9) - 3.0) < 1e-3

    def test_adam_converges(self):
        assert abs(_quadratic_descent(Adam, lr=0.1) - 3.0) < 1e-2

    def test_adamw_converges(self):
        assert abs(_quadratic_descent(AdamW, lr=0.1, weight_decay=1e-4) - 3.0) < 0.1

    def test_weight_decay_shrinks(self):
        param = Parameter(np.array([5.0]))
        opt = SGD([param], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        opt.step()
        assert param.value[0] < 5.0

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=-1.0)

    def test_requires_grad_false_is_frozen(self):
        param = Parameter(np.array([1.0]), requires_grad=False)
        opt = SGD([param], lr=0.1)
        param.grad = np.array([10.0])
        opt.step()
        assert param.value[0] == 1.0
