"""Shared fixtures: small trained models and datasets reused across tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import CrossEntropyLoss, SGD, Trainer
from repro.nn.data import SyntheticClassification, train_val_split
from repro.nn.models import resnet18_mini


@pytest.fixture(scope="session")
def classification_data():
    """A small synthetic classification dataset split into train/val."""
    dataset = SyntheticClassification(320, 16, 5, seed=0)
    return train_val_split(dataset, val_fraction=0.25)


@pytest.fixture(scope="session")
def trained_resnet18(classification_data):
    """A ResNet-18-mini trained to high accuracy on the synthetic task.

    Session-scoped because training takes a few seconds and many compression
    tests start from a well-trained model (as the paper does from pretrained
    ImageNet checkpoints).
    """
    train, val = classification_data
    model = resnet18_mini(num_classes=5, seed=1)
    trainer = Trainer(model, CrossEntropyLoss(),
                      SGD(model.parameters(), lr=0.05, momentum=0.9), batch_size=32)
    trainer.fit(train, epochs=6, val_set=val)
    return model


@pytest.fixture()
def trained_model(trained_resnet18):
    """A fresh copy of the trained ResNet-18 that tests may freely mutate."""
    model = resnet18_mini(num_classes=5, seed=1)
    model.load_state_dict(trained_resnet18.state_dict())
    return model


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
