"""Shared fixtures for the repro.explore tests: a smoke-sized search space."""

from __future__ import annotations

import copy

import pytest

from repro.explore.space import SearchSpace

#: a minimal end-to-end pipeline: tiny codebooks, few iterations, small
#: serve_eval — one candidate evaluates in well under a second
TINY_PIPELINE = {
    "preset": "mvq",
    "base": {"k": 8, "max_kmeans_iterations": 4},
    "stages": ["group", "prune", "cluster", "quantize", "serve_eval",
               "accel_eval"],
    "serve": {"batch_size": 2, "num_samples": 4},
    "data": {"num_samples": 32, "image_size": 16, "num_classes": 4},
    "accelerator": {"setting": "EWS-CMS", "array_size": 64},
}


def _tiny_space(**overrides) -> SearchSpace:
    data = {
        "name": "test-tiny",
        "model": "resnet18",
        "model_kwargs": {"num_classes": 4, "seed": 2},
        "workload": "resnet18",
        "pipeline": copy.deepcopy(TINY_PIPELINE),
        "strategy": "grid",
        "axes": [
            {"path": "base.k", "values": [6, 8]},
            {"path": "accelerator.array_size", "values": [32, 64]},
        ],
    }
    data.update(overrides)
    return SearchSpace.from_dict(data)


@pytest.fixture()
def tiny_space():
    """Factory building the smoke space with optional key overrides."""
    return _tiny_space


@pytest.fixture()
def tiny_pipeline():
    return copy.deepcopy(TINY_PIPELINE)


@pytest.fixture()
def space() -> SearchSpace:
    return _tiny_space()
