"""Evaluator backend selection and the spawned-process evaluation path."""

import numpy as np
import pytest

from repro.core.faults import FaultPlan, FaultRule
from repro.explore.evaluator import Evaluator


class TestBackendResolution:
    def test_invalid_backend_rejected(self, space):
        with pytest.raises(ValueError):
            Evaluator(space, backend="fork")

    def test_thread_is_the_default(self, space, tmp_path):
        evaluator = Evaluator(space, cache_dir=str(tmp_path))
        assert evaluator.backend == "thread"
        assert evaluator._resolve_backend() == "thread"

    def test_process_needs_a_disk_store(self, space):
        evaluator = Evaluator(space, backend="process")
        evaluator.workers = 2
        # memory-only store: no cross-process cache channel -> threads
        assert evaluator._resolve_backend() == "thread"

    def test_process_needs_more_than_one_worker(self, space, tmp_path):
        evaluator = Evaluator(space, cache_dir=str(tmp_path),
                              backend="process")
        evaluator.workers = 1
        assert evaluator._resolve_backend() == "thread"

    def test_process_resolves_with_disk_and_workers(self, space, tmp_path):
        evaluator = Evaluator(space, cache_dir=str(tmp_path),
                              backend="process")
        evaluator.workers = 2
        assert evaluator._resolve_backend() == "process"

    def test_active_fault_plan_forces_threads(self, space, tmp_path):
        evaluator = Evaluator(space, cache_dir=str(tmp_path),
                              backend="process")
        evaluator.workers = 2
        plan = FaultPlan([FaultRule("explore.candidate.eval",
                                    probability=1.0)], seed=0)
        with plan.active():
            assert evaluator._resolve_backend() == "thread"
        assert evaluator._resolve_backend() == "process"

    def test_auto_respects_cpu_count_and_store(self, space, tmp_path,
                                               monkeypatch):
        import repro.explore.evaluator as module

        evaluator = Evaluator(space, cache_dir=str(tmp_path), backend="auto")
        evaluator.workers = 2
        monkeypatch.setattr(module, "_available_cpus", lambda: 4)
        assert evaluator._resolve_backend() == "process"
        monkeypatch.setattr(module, "_available_cpus", lambda: 1)
        assert evaluator._resolve_backend() == "thread"
        no_disk = Evaluator(space, backend="auto")
        no_disk.workers = 2
        monkeypatch.setattr(module, "_available_cpus", lambda: 4)
        assert no_disk._resolve_backend() == "thread"


class TestProcessEvaluation:
    def test_process_results_match_thread_results(self, tiny_space, tmp_path):
        space = tiny_space(axes=[{"path": "base.k", "values": [6, 8]}])
        candidates = space.grid()

        thread_ev = Evaluator(space, cache_dir=str(tmp_path / "thread"),
                              workers=2, backend="thread")
        reference = thread_ev.evaluate(candidates)

        process_ev = Evaluator(space, cache_dir=str(tmp_path / "process"),
                               workers=2, backend="process")
        process_ev.workers = 2  # past the CPU clamp on 1-CPU hosts
        results = process_ev.evaluate(candidates)

        assert process_ev.stats()["backend"] == "process"
        assert process_ev.stats()["evaluated"] == len(candidates)
        for want, got in zip(reference, results):
            assert got.ok, got.error
            assert got.candidate.index == want.candidate.index
            for name, value in want.objectives.items():
                assert got.objectives[name] == value, name

    def test_infeasible_candidate_counted_from_worker(self, tiny_space,
                                                      tmp_path):
        space = tiny_space(axes=[
            {"path": "accelerator.array_size", "values": [64, -1]}])
        evaluator = Evaluator(space, cache_dir=str(tmp_path), workers=2,
                              backend="process")
        evaluator.workers = 2
        results = evaluator.evaluate(space.grid())
        by_ok = {result.ok for result in results}
        assert by_ok == {True, False}
        assert evaluator.stats()["infeasible"] == 1
        bad = next(r for r in results if not r.ok)
        assert bad.error_type == "InfeasibleCandidate"
