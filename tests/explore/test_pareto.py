"""Pareto dominance and frontier edge cases (the ISSUE's satellite tests)."""

import json

import pytest

from repro.explore.pareto import (
    DEFAULT_OBJECTIVES,
    Objective,
    ParetoFrontier,
    dominates,
    get_objective,
    nondominated_rank,
    render_csv,
    render_markdown,
    resolve_objectives,
)

MAXMIN = (Objective("score", "max"), Objective("cost", "min"))


def point(score, cost, index=0):
    return {"index": index, "objectives": {"score": score, "cost": cost},
            "values": {"x": index}}


class TestObjective:
    def test_direction_validation(self):
        with pytest.raises(ValueError, match="direction"):
            Objective("x", "sideways")

    def test_registry(self):
        assert get_objective("latency_ms").direction == "min"
        assert get_objective("compression_ratio").direction == "max"
        with pytest.raises(KeyError, match="unknown objective"):
            get_objective("nope")
        assert [o.name for o in resolve_objectives(DEFAULT_OBJECTIVES)] == \
            list(DEFAULT_OBJECTIVES)


class TestDominance:
    def test_strictly_better_everywhere(self):
        assert dominates(point(2, 1), point(1, 2), MAXMIN)
        assert not dominates(point(1, 2), point(2, 1), MAXMIN)

    def test_equal_in_one_better_in_other(self):
        assert dominates(point(2, 1), point(2, 2), MAXMIN)
        assert dominates(point(2, 1), point(1, 1), MAXMIN)

    def test_exact_ties_dominate_neither_way(self):
        a, b = point(1, 1, 0), point(1, 1, 1)
        assert not dominates(a, b, MAXMIN)
        assert not dominates(b, a, MAXMIN)

    def test_trade_off_is_incomparable(self):
        a, b = point(2, 2), point(1, 1)          # better score, worse cost
        assert not dominates(a, b, MAXMIN)
        assert not dominates(b, a, MAXMIN)

    def test_direction_respected(self):
        minmin = (Objective("score", "min"), Objective("cost", "min"))
        assert dominates(point(1, 1), point(2, 2), minmin)
        assert not dominates(point(2, 1), point(1, 2), minmin)


class TestFrontier:
    def test_keeps_trade_off_points_and_drops_dominated(self):
        frontier = ParetoFrontier(MAXMIN)
        assert frontier.add(point(1, 1, 0))
        assert frontier.add(point(2, 2, 1))      # incomparable: both stay
        assert not frontier.add(point(0.5, 1.5, 2))   # dominated by both
        assert {p["index"] for p in frontier.points} == {0, 1}
        assert frontier.dominated_count == 1

    def test_new_point_evicts_dominated_incumbents(self):
        frontier = ParetoFrontier(MAXMIN)
        frontier.update([point(1, 3, 0), point(2, 2, 1)])
        assert frontier.add(point(3, 1, 2))      # dominates both
        assert [p["index"] for p in frontier.points] == [2]
        assert frontier.dominated_count == 2

    def test_ties_coexist_on_frontier(self):
        frontier = ParetoFrontier(MAXMIN)
        frontier.update([point(1, 1, 0), point(1, 1, 1)])
        assert len(frontier) == 2

    def test_single_objective_degenerates_to_argmax(self):
        frontier = ParetoFrontier([Objective("score", "max")])
        for i, score in enumerate([3, 1, 7, 7, 2]):
            frontier.add({"index": i, "objectives": {"score": score},
                          "values": {}})
        assert sorted(p["index"] for p in frontier.points) == [2, 3]  # tied max

    def test_all_dominated_chain_leaves_one(self):
        frontier = ParetoFrontier(MAXMIN)
        frontier.update([point(i, 10 - i, i) for i in range(5)])
        assert [p["index"] for p in frontier.points] == [4]

    def test_requires_objectives_and_objective_map(self):
        with pytest.raises(ValueError, match="at least one objective"):
            ParetoFrontier([])
        with pytest.raises(TypeError, match="objectives"):
            ParetoFrontier(MAXMIN).add(42)

    def test_best_is_deterministic_and_scalarized(self):
        frontier = ParetoFrontier(MAXMIN)
        frontier.update([point(1, 1, 0), point(2, 2, 1), point(3, 3, 2)])
        # equal weights: all normalise to the same scalar; earliest wins
        assert frontier.best()["index"] == 0
        # weighting score only: the high-score point wins
        assert frontier.best({"score": 10, "cost": 0})["index"] == 2
        with pytest.raises(ValueError, match="empty frontier"):
            ParetoFrontier(MAXMIN).best()

    def test_best_single_point(self):
        frontier = ParetoFrontier(MAXMIN)
        frontier.add(point(1, 1, 7))
        assert frontier.best()["index"] == 7


class TestRank:
    def test_nondominated_rank_peels_fronts(self):
        points = [point(3, 3, 0), point(1, 1, 1),     # front 0 (trade-off)
                  point(2, 4, 2),                      # dominated by (3,3)
                  point(0.5, 2, 3),                    # dominated by (1,1)
                  point(0.4, 5, 4)]                    # dominated by both above
        ranks = nondominated_rank(points, MAXMIN)
        assert ranks == [0, 0, 1, 1, 2]


class TestRendering:
    def test_markdown_and_csv_round_trip(self):
        frontier = ParetoFrontier(MAXMIN)
        frontier.update([point(1, 1, 0), point(2, 2, 1)])   # incomparable
        md = frontier.to_markdown()
        assert md.splitlines()[0] == "| candidate | x | score | cost |"
        assert "| 1 |" in md
        csv_text = frontier.to_csv()
        assert csv_text.splitlines()[0] == "candidate,x,score,cost"
        assert len(csv_text.splitlines()) == 3
        loaded = json.loads(frontier.to_json())
        assert [o["name"] for o in loaded["objectives"]] == ["score", "cost"]
        assert len(loaded["points"]) == 2

    def test_records_sorted_by_first_objective(self):
        frontier = ParetoFrontier(MAXMIN)
        frontier.update([point(1, 1, 0), point(2, 2, 1)])
        assert [r["index"] for r in frontier.to_records()] == [1, 0]

    def test_render_handles_missing_columns(self):
        records = [{"index": 0, "values": {"a": 1}, "objectives": {"s": 1.0}},
                   {"index": 1, "values": {"b": 2}, "objectives": {}}]
        md = render_markdown(records, ["s"])
        assert "| - |" in md.splitlines()[3]
        csv_text = render_csv(records, ["s"])
        assert csv_text.splitlines()[0] == "candidate,a,b,s"
