"""Fault-hardened exploration: retries, typed failures, sweep completion."""

import pytest

from repro.core.faults import FaultPlan, FaultRule
from repro.explore.cli import main as explore_main
from repro.explore.evaluator import Evaluator
from repro.explore.runner import explore


class TestEvaluatorRetries:
    def test_transient_fault_is_retried_to_success(self, space):
        # exactly one injected failure: attempt 1 faults, attempt 2 runs
        plan = FaultPlan([FaultRule("explore.candidate.eval",
                                    probability=1.0, max_injections=1)])
        evaluator = Evaluator(space, workers=1, retries=2, backoff_ms=1.0)
        with plan.active():
            result = evaluator.evaluate_one(space.grid()[0])
        assert result.ok
        assert result.attempts == 2
        assert evaluator.stats()["retried"] == 1
        assert evaluator.stats()["failed"] == 0

    def test_budget_exhaustion_is_typed_failure(self, space):
        plan = FaultPlan([FaultRule("explore.candidate.eval",
                                    probability=1.0)])
        evaluator = Evaluator(space, workers=1, retries=1, backoff_ms=1.0)
        with plan.active():
            result = evaluator.evaluate_one(space.grid()[0])
        assert not result.ok
        assert result.error_type == "InjectedFault"
        assert result.attempts == 2  # initial try + 1 retry
        record = result.record()
        assert record["error_type"] == "InjectedFault"
        assert record["attempts"] == 2

    def test_infeasible_candidate_is_not_retried(self, tiny_space):
        bad = tiny_space(axes=[{"path": "accelerator.array_size",
                                "values": [63]}])  # not a power of two
        evaluator = Evaluator(bad, workers=1, retries=5, backoff_ms=1.0)
        result = evaluator.evaluate_one(bad.grid()[0])
        assert not result.ok
        assert result.error_type == "InfeasibleCandidate"
        assert result.attempts == 0
        assert evaluator.stats()["retried"] == 0

    def test_validation(self, space):
        with pytest.raises(ValueError):
            Evaluator(space, retries=-1)
        with pytest.raises(ValueError):
            Evaluator(space, backoff_ms=-1.0)


class TestSweepUnderFaults:
    def test_sweep_completes_and_reports_failures(self, space):
        # high fault rate + small retry budget: some candidates fail, but
        # the sweep finishes and the report carries the typed failures
        plan = FaultPlan([FaultRule("explore.candidate.eval",
                                    probability=0.5)], seed=17)
        with plan.active():
            result = explore(space, workers=2, retries=1, backoff_ms=1.0)
        assert len(result.results) == 4  # every candidate accounted for
        for failure in result.errors:
            assert failure.error_type == "InjectedFault"
            assert failure.attempts == 2
        errors = result.stats["errors"]
        assert len(errors) == len(result.errors)
        for entry in errors:
            assert entry["error_type"] == "InjectedFault"

    def test_moderate_faults_with_retries_lose_no_candidate(self, space):
        # 30% per-attempt faults, 2 retries: P(3 consecutive) ~ 2.7%; with
        # this seed every candidate recovers and the frontier is intact
        plan = FaultPlan([FaultRule("explore.candidate.eval",
                                    probability=0.3)], seed=5)
        with plan.active():
            faulted = explore(space, workers=2, retries=2, backoff_ms=1.0)
        clean = explore(space, workers=2)
        assert not faulted.errors, [r.error for r in faulted.errors]
        assert faulted.stats["retried"] >= 1
        # injected faults change wall time, never results: the frontier's
        # objective vectors are bit-identical to the clean sweep's
        faulted_front = {r.candidate.index: r.objectives
                         for r in faulted.frontier.points}
        clean_front = {r.candidate.index: r.objectives
                       for r in clean.frontier.points}
        assert faulted_front == clean_front


class TestChaosCLI:
    def test_run_with_faults_flag_completes(self, tiny_pipeline, tmp_path,
                                            capsys):
        space_file = tmp_path / "space.json"
        import json
        space_file.write_text(json.dumps({
            "name": "chaos-cli",
            "model": "resnet18",
            "model_kwargs": {"num_classes": 4, "seed": 2},
            "workload": "resnet18",
            "pipeline": tiny_pipeline,
            "strategy": "grid",
            "axes": [{"path": "base.k", "values": [6, 8]}],
        }))
        out_file = tmp_path / "report.json"
        code = explore_main(["run", str(space_file), "--workers", "1",
                             "--faults", "0.3", "--fault-seed", "5",
                             "--retries", "3",
                             "--cache-dir", str(tmp_path / "cache"),
                             "--output", str(out_file)])
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "chaos session" in captured.out
        report = json.loads(out_file.read_text())
        assert report["frontier"], "chaos run must keep a non-empty frontier"
        for record in report["candidates"]:
            assert record["attempts"] >= 1
