"""SearchSpace parsing/enumeration and the strategy registry."""

import pytest

from repro.explore.space import Axis, SearchSpace
from repro.explore.strategies import get_strategy, list_strategies
from repro.pipeline.config import PipelineConfig


class TestAxis:
    def test_path_axis_applies_into_pipeline(self):
        spec = {"model": "resnet18", "pipeline": {}}
        Axis(values=(32,), path="base.k").apply(spec, 32)
        assert spec["pipeline"]["base"]["k"] == 32

    def test_scenario_rooted_path(self):
        spec = {"model": "resnet18", "pipeline": {}}
        Axis(values=("vgg16",), path="model").apply(spec, "vgg16")
        assert spec["model"] == "vgg16"

    def test_override_axis_merges_per_pattern(self):
        axis_k = Axis(values=(16,), pattern="stem.*", layer_field="k")
        axis_n = Axis(values=(2,), pattern="stem.*", layer_field="n_keep")
        spec = {"pipeline": {}}
        axis_k.apply(spec, 16)
        axis_n.apply(spec, 2)
        assert spec["pipeline"]["overrides"] == [
            {"pattern": "stem.*", "fields": {"k": 16, "n_keep": 2}}]
        assert axis_k.label == "overrides[stem.*].k"

    def test_coupled_axis_sets_many_keys(self):
        axis = Axis(values=({"model": "vgg16", "workload": "vgg16"},),
                    path="", name="model")
        spec = {"model": "resnet18", "workload": "resnet18", "pipeline": {}}
        axis.apply(spec, axis.values[0])
        assert spec["model"] == spec["workload"] == "vgg16"

    def test_validation(self):
        with pytest.raises(ValueError, match="no values"):
            Axis(values=(), path="base.k")
        with pytest.raises(ValueError, match="come together"):
            Axis(values=(1,), pattern="stem.*")
        with pytest.raises(ValueError, match="'path' or 'pattern'"):
            Axis(values=(1,))
        with pytest.raises(ValueError, match="unknown fields"):
            Axis(values=(1,), pattern="stem.*", layer_field="nope")
        with pytest.raises(ValueError, match="mapping values"):
            Axis(values=(1,), path="")
        with pytest.raises(ValueError, match="unknown axis keys"):
            Axis.from_dict({"path": "base.k", "values": [1], "oops": 2})


class TestSearchSpace:
    def test_grid_enumeration_order_and_size(self, space):
        grid = space.grid()
        assert space.grid_size == len(grid) == 4
        assert [c.index for c in grid] == [0, 1, 2, 3]
        assert grid[0].values_dict == {"base.k": 6,
                                       "accelerator.array_size": 32}
        assert grid[3].values_dict == {"base.k": 8,
                                       "accelerator.array_size": 64}
        # candidate specs are deep-copied: mutating one never leaks
        grid[0].scenario_spec()["pipeline"]["base"]["k"] = 999
        assert grid[0].spec["pipeline"]["base"]["k"] == 6

    def test_sample_is_seeded_and_distinct(self, space):
        a = space.sample(3)
        b = space.sample(3)
        assert [c.index for c in a] == [c.index for c in b]
        assert len({c.index for c in a}) == 3
        assert [c.index for c in space.sample(3, seed=99)] != \
            [c.index for c in a] or True  # different seed may differ
        # covering budget returns the full grid
        assert len(space.sample(10)) == space.grid_size

    def test_round_trip(self, space):
        again = SearchSpace.from_dict(space.to_dict())
        assert again == space

    def test_axes_shorthand_mapping(self, tiny_space):
        shorthand = tiny_space(axes={"base.k": [6, 8]})
        assert shorthand.axes[0].path == "base.k"
        assert shorthand.grid_size == 2

    def test_pipeline_embedded_form(self, tiny_pipeline):
        data = dict(tiny_pipeline)
        data["explore"] = {
            "name": "embedded",
            "model": "resnet18",
            "model_kwargs": {"num_classes": 4, "seed": 2},
            "workload": "resnet18",
            "axes": [{"path": "base.k", "values": [6, 8]}],
        }
        space = SearchSpace.from_dict(data)
        assert space.name == "embedded"
        assert space.pipeline["base"]["k"] == 8          # base from the config
        assert "explore" not in space.pipeline
        # and through a parsed PipelineConfig object
        config = PipelineConfig.from_dict(data)
        space2 = SearchSpace.from_config(
            config, model="resnet18", workload="resnet18")
        assert space2.grid_size == 2

    def test_from_config_requires_explore_section(self):
        with pytest.raises(ValueError, match="no explore section"):
            SearchSpace.from_config(PipelineConfig())

    def test_validation_errors(self, tiny_space):
        with pytest.raises(ValueError, match="no axes"):
            tiny_space(axes=[])
        with pytest.raises(ValueError, match="duplicate axis"):
            tiny_space(axes=[{"path": "base.k", "values": [1]},
                             {"path": "base.k", "values": [2]}])
        with pytest.raises(KeyError, match="unknown objective"):
            tiny_space(objectives=["nope"])
        with pytest.raises(ValueError, match="unknown SearchSpace keys"):
            SearchSpace.from_dict({"name": "x", "axes": {"base.k": [1]},
                                   "oops": 1})
        # a broken base pipeline fails at space-build time, not mid-sweep
        with pytest.raises(ValueError, match="unknown LayerCompressionConfig"):
            tiny_space(pipeline={"base": {"nope": 1}})


class TestStrategies:
    def test_registry(self):
        names = [s.name for s in list_strategies()]
        assert names == ["grid", "halving", "random"]
        with pytest.raises(KeyError, match="unknown strategy"):
            get_strategy("nope")
