"""The explore CLI, the search-space registry and the lazy ``explore-*``
scenario entries (frontier-best serving)."""

import json

import pytest

from repro.explore.cli import main
from repro.explore.runner import explore, render_report
from repro.explore.spaces import SPACES, get_space, list_spaces
from repro.pipeline.scenarios import get_scenario, run_scenario


class TestSpaceRegistry:
    def test_built_in_spaces_present(self):
        names = {s.name for s in list_spaces()}
        assert {"quickstart-grid", "accel-sweep", "table3-ablation",
                "models-grid", "halving-demo"} <= names

    def test_get_space_unknown(self):
        with pytest.raises(KeyError, match="unknown search space"):
            get_space("nope")

    def test_every_space_enumerates(self):
        for space in list_spaces():
            grid = space.grid()
            assert len(grid) == space.grid_size
            for candidate in grid[:1]:
                assert "pipeline" in candidate.spec


class TestExploreScenarioEntries:
    def test_best_scenarios_registered_for_fixed_model_spaces(self):
        scenario = get_scenario("explore-accel-sweep-best")
        assert scenario.model == "resnet18"
        assert scenario.space == "accel-sweep"
        # models-grid sweeps the model itself -> no static entry possible
        with pytest.raises(KeyError):
            get_scenario("explore-models-grid-best")

    def test_no_best_entry_for_scenario_varying_axes(self, tiny_space):
        """Axes touching the scenario itself (model_kwargs, input_shape, ...)
        would let the static entry serve a different architecture than the
        searched winner — such spaces must not get a lazy entry."""
        from repro.explore.spaces import _register_best_scenario

        for axes in ([{"path": "model_kwargs.num_classes", "values": [4, 5]}],
                     [{"path": "model", "values": ["resnet18", "vgg16"]}],
                     [{"path": "input_shape", "values": [[3, 8, 8]]}]):
            assert _register_best_scenario(tiny_space(axes=axes)) is None
        assert _register_best_scenario(
            tiny_space(name="test-tiny-fixed",
                       axes=[{"path": "base.k", "values": [6, 8]}]))
        from repro.pipeline.scenarios import SCENARIOS
        SCENARIOS.pop("explore-test-tiny-fixed-best", None)  # keep registry clean

    def test_frontier_scenario_resolves_and_runs(self):
        """The lazy entry runs the tiny search once, then serves its best
        point through the ordinary pipeline path (the serve loader's route)."""
        scenario = get_scenario("explore-accel-sweep-best")
        config = scenario.pipeline_config()
        result = run_scenario(scenario,
                              stages=["group", "prune", "cluster", "quantize"])
        assert result.compressed is not None
        assert result.compressed.compression_ratio() > 1
        # memoized: the second resolution does not re-search
        assert scenario.pipeline_config().to_dict() == config.to_dict()


class TestCli:
    def test_list_subcommands(self, capsys):
        assert main(["list-strategies"]) == 0
        out = capsys.readouterr().out
        assert "halving" in out and "grid" in out
        assert main(["list-spaces"]) == 0
        assert "accel-sweep" in capsys.readouterr().out

    def test_run_requires_exactly_one_source(self, capsys):
        assert main(["run"]) == 2
        assert main(["run", "space.json", "--scenario", "x"]) == 2

    def test_run_space_file_with_reports(self, tmp_path, capsys, space):
        space_path = tmp_path / "space.json"
        space_path.write_text(json.dumps(space.to_dict()))
        out_json = tmp_path / "frontier.json"
        out_csv = tmp_path / "frontier.csv"
        out_md = tmp_path / "frontier.md"

        assert main(["run", str(space_path), "--cache-dir",
                     str(tmp_path / "cache"), "--output", str(out_json),
                     "--csv", str(out_csv), "--markdown", str(out_md)]) == 0
        report = json.loads(out_json.read_text())
        assert report["frontier"], "frontier must be non-empty"
        assert report["stats"]["candidates"] == space.grid_size
        assert out_csv.read_text().startswith("candidate,")
        assert out_md.read_text().startswith("| candidate |")
        # frontier points embed runnable scenario specs
        assert all("pipeline" in p["scenario"] for p in report["frontier"])

        # warm re-run from the on-disk cache: zero fresh clustering
        assert main(["run", str(space_path), "--cache-dir",
                     str(tmp_path / "cache"), "--output", str(out_json)]) == 0
        warm = json.loads(out_json.read_text())
        assert warm["stats"]["cluster_layers_fresh"] == 0
        assert warm["stats"]["cluster_layers_cached"] > 0
        # ... and bit-identical objectives
        assert warm["frontier"][0]["objectives"] == \
            report["frontier"][0]["objectives"]

    def test_run_strategy_and_budget_overrides(self, tmp_path, capsys, space):
        space_path = tmp_path / "space.json"
        space_path.write_text(json.dumps(space.to_dict()))
        assert main(["run", str(space_path), "--strategy", "random",
                     "--budget", "2"]) == 0
        out = capsys.readouterr().out
        assert "strategy random, 2 candidates" in out

    def test_run_registered_space_and_register_best(self, capsys):
        from repro.pipeline.scenarios import SCENARIOS, register_scenario

        original = get_scenario("explore-accel-sweep-best")
        try:
            assert main(["run", "--scenario", "accel-sweep",
                         "--register"]) == 0
            out = capsys.readouterr().out
            assert "registered scenario 'explore-accel-sweep-best'" in out
            # the registered entry is now a concrete scenario (search ran)
            scenario = SCENARIOS["explore-accel-sweep-best"]
            assert scenario.pipeline   # resolved best point, not lazy
            assert SPACES["accel-sweep"].grid_size == 4
        finally:
            register_scenario(original, overwrite=True)

    def test_report_rendering(self, tmp_path, capsys, space):
        result = explore(space)
        out_json = tmp_path / "frontier.json"
        result.save(out_json)
        assert main(["report", str(out_json)]) == 0
        assert capsys.readouterr().out.startswith("| candidate |")
        assert main(["report", str(out_json), "--format", "csv"]) == 0
        assert capsys.readouterr().out.startswith("candidate,")
        assert main(["report", str(out_json), "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)
        report = json.loads(out_json.read_text())
        with pytest.raises(ValueError, match="unknown report format"):
            render_report(report, fmt="nope")


class TestEmbeddedSpaceFile:
    def test_pipeline_config_with_explore_section(self, tmp_path, capsys,
                                                  tiny_pipeline):
        """A PipelineConfig JSON carrying an `explore` section is a valid
        space file: the rest of the config is the sweep's base pipeline."""
        data = dict(tiny_pipeline)
        data["explore"] = {
            "name": "embedded-cli",
            "model": "resnet18",
            "model_kwargs": {"num_classes": 4, "seed": 2},
            "workload": "resnet18",
            "axes": {"base.k": [6, 8]},
        }
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps(data))
        assert main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "space 'embedded-cli'" in out
        assert "2 candidates" in out
