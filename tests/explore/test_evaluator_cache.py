"""Evaluator behaviour: artifact-cache reuse across neighboring candidates,
parallel-vs-sequential equivalence, up-front infeasibility rejection and the
halving strategy's proxy pruning."""

import pytest

from repro.explore.evaluator import Evaluator, clustering_signature
from repro.explore.runner import explore
from repro.pipeline.artifacts import ArtifactStore


class TestClusteringSignature:
    def test_accelerator_and_quantize_fields_are_ignored(self, space):
        a, b, c, d = space.grid()
        # a/b and c/d differ only in array size -> same clustering
        assert clustering_signature(a.spec) == clustering_signature(b.spec)
        assert clustering_signature(c.spec) == clustering_signature(d.spec)
        # a/c differ in k -> different clustering
        assert clustering_signature(a.spec) != clustering_signature(c.spec)

    def test_codebook_bits_share_signature(self, tiny_space):
        bits = tiny_space(axes={"base.codebook_bits": [6, 8]})
        a, b = bits.grid()
        assert clustering_signature(a.spec) == clustering_signature(b.spec)

    def test_model_changes_signature(self, tiny_space):
        base = tiny_space().grid()[0]
        other = tiny_space(model="mobilenet_v1").grid()[0]
        assert clustering_signature(base.spec) != clustering_signature(other.spec)


class TestCacheReuse:
    def test_accel_only_neighbors_fully_reuse_clustering(self, space):
        """Candidates sharing all layer settings cluster exactly once."""
        evaluator = Evaluator(space, workers=1)
        results = evaluator.evaluate(space.grid())
        assert all(r.ok for r in results), [r.error for r in results]
        by_index = {r.candidate.index: r for r in results}
        # grid order: (k=6,32), (k=6,64), (k=8,32), (k=8,64); the two array
        # sizes of each k share every cluster entry
        for leader, follower in ((0, 1), (2, 3)):
            assert by_index[leader].cluster_layers_fresh > 0
            assert by_index[follower].cluster_layers_fresh == 0
            assert by_index[follower].cluster_layers_cached == \
                by_index[leader].cluster_layers_fresh

    def test_per_layer_override_reclusters_only_affected_layers(self, tiny_space):
        """A stem-only k override re-clusters the stem, reusing the rest."""
        stem = tiny_space(axes=[
            {"pattern": "stem.*", "field": "k", "values": [6, 8]}])
        evaluator = Evaluator(stem, workers=1)
        first, second = evaluator.evaluate(stem.grid())
        assert first.cluster_layers_fresh > 1
        assert second.cluster_layers_fresh == 1          # just the stem conv
        assert second.cluster_layers_cached == first.cluster_layers_fresh - 1

    def test_warm_rerun_is_all_hits(self, space, tmp_path):
        """Re-exploring against a warm disk cache re-clusters nothing."""
        store = ArtifactStore(tmp_path / "cache")
        cold = explore(space, store=store)
        warm = explore(space, store=ArtifactStore(tmp_path / "cache"))
        assert warm.stats["cluster_layers_fresh"] == 0
        assert cold.stats["cluster_layers_fresh"] > 0
        for c, w in zip(cold.results, warm.results):
            assert c.objectives == w.objectives

    def test_parallel_matches_sequential(self, space):
        sequential = Evaluator(space, workers=1).evaluate(space.grid())
        parallel = Evaluator(space, workers=4).evaluate(space.grid())
        assert [r.candidate.index for r in parallel] == \
            [r.candidate.index for r in sequential]
        for s, p in zip(sequential, parallel):
            assert s.objectives == p.objectives
        # the signature waves keep the cache deterministic even in parallel
        assert sum(r.cluster_layers_cached for r in parallel) == \
            sum(r.cluster_layers_cached for r in sequential)


class TestFeasibility:
    def test_infeasible_accelerator_rejected_up_front(self, tiny_space):
        """An invalid array/buffer combination fails fast with a clear error
        and never reaches the compression stages."""
        bad = tiny_space(axes=[
            {"path": "accelerator.array_size", "values": [64, 24]}])
        evaluator = Evaluator(bad, workers=1)
        good, infeasible = evaluator.evaluate(bad.grid())
        assert good.ok
        assert not infeasible.ok
        assert "infeasible" in infeasible.error
        assert "multiple of the subvector length" in infeasible.error
        assert evaluator.infeasible == 1
        assert infeasible.seconds < good.seconds     # no compression was run

    def test_sweep_survives_infeasible_points(self, tiny_space):
        bad = tiny_space(axes=[
            {"path": "accelerator.array_size", "values": [64, 24]}])
        result = explore(bad)
        assert len(result.frontier) >= 1
        assert [e["index"] for e in result.stats["errors"]] == [1]


class TestObjectives:
    def test_objective_vector_contents(self, space):
        result = explore(space)
        for r in result.ok_results:
            assert set(r.objectives) == {"accuracy", "compression_ratio",
                                         "latency_ms", "energy_mj"}
            assert r.objectives["compression_ratio"] > 1
            assert r.objectives["latency_ms"] > 0
            assert r.objectives["energy_mj"] > 0
            assert 0 <= r.objectives["accuracy"] <= 1

    def test_missing_accel_stage_fails_loudly(self, tiny_space):
        pipeline = dict(tiny_space().pipeline)
        pipeline["stages"] = ["group", "prune", "cluster", "quantize",
                              "serve_eval"]
        crippled = tiny_space(pipeline=pipeline, workload=None)
        results = Evaluator(crippled, workers=1).evaluate(
            crippled.grid()[:1])
        assert not results[0].ok
        assert "latency_ms" in results[0].error


class TestHalving:
    def test_prunes_on_proxy_then_full_fidelity_survivors(self, tiny_space):
        halving = tiny_space(strategy="halving", budget=4, min_fidelity=0.5)
        result = explore(halving)
        assert result.history, "halving must record proxy rungs"
        rung = result.history[0]
        assert rung["fidelity"] == 0.5
        assert len(rung["evaluated"]) == 4
        assert len(rung["kept"]) == 2
        assert set(rung["kept"]) | set(rung["pruned"]) == set(rung["evaluated"])
        # final results are full-fidelity evaluations of the survivors
        assert {r.candidate.index for r in result.results} <= \
            set(rung["kept"])
        assert all(r.fidelity == 1.0 for r in result.results)
        assert len(result.results) == 2
        assert len(result.frontier) >= 1

    def test_best_scenario_is_runnable(self, space):
        result = explore(space)
        scenario = result.best_scenario(name="test-explore-best")
        assert scenario.name == "test-explore-best"
        from repro.pipeline.scenarios import run_scenario
        rerun = run_scenario(scenario)
        best = result.best()
        assert rerun.compressed.compression_ratio() == pytest.approx(
            best.objectives["compression_ratio"], abs=0)
