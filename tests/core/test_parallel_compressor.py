"""Parallel per-layer compression must be bit-identical to sequential."""

import numpy as np
import pytest

from repro.core import LayerCompressionConfig, MVQCompressor, precision
from repro.core import compressor as compressor_mod


def _assert_identical(a, b):
    assert list(a.layers) == list(b.layers)
    for name, la in a.layers.items():
        lb = b.layers[name]
        assert np.array_equal(la.assignments, lb.assignments)
        assert np.array_equal(la.codebook.codewords, lb.codebook.codewords)
        assert np.array_equal(la.mask, lb.mask)


class TestParallelCompression:
    def test_parallel_bit_identical_to_sequential(self, trained_model):
        cfg = LayerCompressionConfig(k=16, d=8, max_kmeans_iterations=15, seed=3)
        sequential = MVQCompressor(cfg).compress(trained_model)
        parallel = MVQCompressor(cfg, workers=4).compress(trained_model)
        _assert_identical(sequential, parallel)

    def test_parallel_repeatable(self, trained_model):
        cfg = LayerCompressionConfig(k=16, d=8, max_kmeans_iterations=15)
        a = MVQCompressor(cfg, workers=3).compress(trained_model)
        b = MVQCompressor(cfg, workers=3).compress(trained_model)
        _assert_identical(a, b)

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            MVQCompressor(LayerCompressionConfig(), workers=0)

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            MVQCompressor(LayerCompressionConfig(), parallel_backend="greenlet")

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_pool_backends_bit_identical(self, backend, trained_model, monkeypatch):
        """Both pool implementations (forced past the single-CPU cap) match
        the sequential result exactly."""
        monkeypatch.setattr(compressor_mod, "_available_cpus", lambda: 4)
        cfg = LayerCompressionConfig(k=16, d=8, max_kmeans_iterations=15, seed=3)
        sequential = MVQCompressor(cfg).compress(trained_model)
        parallel = MVQCompressor(cfg, workers=4,
                                 parallel_backend=backend).compress(trained_model)
        _assert_identical(sequential, parallel)

    def test_process_backend_inherits_precision_scope(self, trained_model,
                                                      monkeypatch):
        """A scoped float32 policy must reach process-pool workers (child
        processes only see the environment defaults otherwise)."""
        monkeypatch.setattr(compressor_mod, "_available_cpus", lambda: 4)
        cfg = LayerCompressionConfig(k=16, d=8, max_kmeans_iterations=10, seed=1)
        with precision.precision("float32"):
            sequential = MVQCompressor(cfg).compress(trained_model)
            parallel = MVQCompressor(cfg, workers=4,
                                     parallel_backend="process").compress(trained_model)
        _assert_identical(sequential, parallel)

    def test_workers_capped_by_available_cpus(self, monkeypatch):
        """On a single-CPU host, workers>1 degrades to the sequential path
        (break-even by construction, never a slowdown)."""
        monkeypatch.setattr(compressor_mod, "_available_cpus", lambda: 1)
        compressor = MVQCompressor(LayerCompressionConfig(), workers=8)
        assert compressor._effective_workers(num_layers=10) == 1
        monkeypatch.setattr(compressor_mod, "_available_cpus", lambda: 16)
        assert compressor._effective_workers(num_layers=10) == 8
        assert compressor._effective_workers(num_layers=3) == 3

    def test_auto_backend_never_picks_process_under_spawn(self, monkeypatch):
        """Spawned workers re-import __main__, so auto must stay on threads
        when fork is not the start method (explicit 'process' still works)."""
        monkeypatch.setattr(compressor_mod.multiprocessing, "get_start_method",
                            lambda allow_none=False: "spawn")
        big = [(np.zeros((500_000, 8)), np.ones((500_000, 8), bool),
                LayerCompressionConfig(max_kmeans_iterations=10), 0, "float64", 1)]
        compressor = MVQCompressor(LayerCompressionConfig(), workers=4)
        assert compressor._choose_backend(big) == "thread"
        forced = MVQCompressor(LayerCompressionConfig(), workers=4,
                               parallel_backend="process")
        assert forced._choose_backend(big) == "process"

    def test_auto_backend_scales_with_work(self):
        small = [(np.zeros((100, 8)), np.ones((100, 8), bool),
                  LayerCompressionConfig(max_kmeans_iterations=10), 0, "float64", 1)]
        big = [(np.zeros((500_000, 8)), np.ones((500_000, 8), bool),
                LayerCompressionConfig(max_kmeans_iterations=10), 0, "float64", 1)]
        compressor = MVQCompressor(LayerCompressionConfig(), workers=4)
        assert compressor._choose_backend(small) == "thread"
        assert compressor._choose_backend(big) == "process"
        forced = MVQCompressor(LayerCompressionConfig(), workers=4,
                               parallel_backend="thread")
        assert forced._choose_backend(big) == "thread"

    def test_decorrelated_seeds_deterministic_and_parallel_safe(self, trained_model):
        cfg = LayerCompressionConfig(k=16, d=8, max_kmeans_iterations=15)
        a = MVQCompressor(cfg, decorrelate_seeds=True).compress(trained_model)
        b = MVQCompressor(cfg, decorrelate_seeds=True, workers=4).compress(trained_model)
        _assert_identical(a, b)

    def test_decorrelated_seeds_differ_across_layers(self):
        compressor = MVQCompressor(LayerCompressionConfig(seed=0),
                                   decorrelate_seeds=True)
        cfg = compressor.config
        seeds = {name: compressor._layer_seed(name, cfg)
                 for name in ("conv1", "conv2", "layer1.0.conv1")}
        assert len(set(seeds.values())) == len(seeds)
        assert compressor._layer_seed("conv1", cfg) == seeds["conv1"]
