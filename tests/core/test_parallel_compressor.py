"""Parallel per-layer compression must be bit-identical to sequential."""

import numpy as np
import pytest

from repro.core import LayerCompressionConfig, MVQCompressor


def _assert_identical(a, b):
    assert list(a.layers) == list(b.layers)
    for name, la in a.layers.items():
        lb = b.layers[name]
        assert np.array_equal(la.assignments, lb.assignments)
        assert np.array_equal(la.codebook.codewords, lb.codebook.codewords)
        assert np.array_equal(la.mask, lb.mask)


class TestParallelCompression:
    def test_parallel_bit_identical_to_sequential(self, trained_model):
        cfg = LayerCompressionConfig(k=16, d=8, max_kmeans_iterations=15, seed=3)
        sequential = MVQCompressor(cfg).compress(trained_model)
        parallel = MVQCompressor(cfg, workers=4).compress(trained_model)
        _assert_identical(sequential, parallel)

    def test_parallel_repeatable(self, trained_model):
        cfg = LayerCompressionConfig(k=16, d=8, max_kmeans_iterations=15)
        a = MVQCompressor(cfg, workers=3).compress(trained_model)
        b = MVQCompressor(cfg, workers=3).compress(trained_model)
        _assert_identical(a, b)

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            MVQCompressor(LayerCompressionConfig(), workers=0)

    def test_decorrelated_seeds_deterministic_and_parallel_safe(self, trained_model):
        cfg = LayerCompressionConfig(k=16, d=8, max_kmeans_iterations=15)
        a = MVQCompressor(cfg, decorrelate_seeds=True).compress(trained_model)
        b = MVQCompressor(cfg, decorrelate_seeds=True, workers=4).compress(trained_model)
        _assert_identical(a, b)

    def test_decorrelated_seeds_differ_across_layers(self):
        compressor = MVQCompressor(LayerCompressionConfig(seed=0),
                                   decorrelate_seeds=True)
        cfg = compressor.config
        seeds = {name: compressor._layer_seed(name, cfg)
                 for name in ("conv1", "conv2", "layer1.0.conv1")}
        assert len(set(seeds.values())) == len(seeds)
        assert compressor._layer_seed("conv1", cfg) == seeds["conv1"]
