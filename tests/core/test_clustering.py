"""Tests for common and masked k-means clustering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.kmeans import assign_to_nearest, kmeans, update_codewords
from repro.core.masked_kmeans import (
    masked_assign,
    masked_distances,
    masked_kmeans,
    masked_update,
)
from repro.core.metrics import masked_sse, total_sse
from repro.core.pruning import nm_prune_mask


def well_separated_clusters(rng, k=4, per_cluster=50, d=8, spread=0.05):
    centers = rng.normal(size=(k, d)) * 5
    data = np.concatenate([
        centers[i] + rng.normal(scale=spread, size=(per_cluster, d)) for i in range(k)
    ])
    return data, centers


class TestKMeans:
    def test_recovers_separated_clusters(self, rng):
        data, centers = well_separated_clusters(rng)
        # start Lloyd's iterations from perturbed true centers: it must converge
        # onto the real ones and reach near-zero clustering error
        init = centers + rng.normal(scale=0.2, size=centers.shape)
        result = kmeans(data, k=4, seed=0, init_codewords=init)
        recon = result.codewords[result.assignments]
        assert np.mean((data - recon) ** 2) < 0.01

    def test_sse_decreases_with_more_codewords(self, rng):
        data = rng.normal(size=(300, 8))
        sse = [kmeans(data, k=k, seed=0).sse for k in (2, 8, 32, 128)]
        assert all(a >= b for a, b in zip(sse, sse[1:]))

    def test_k_greater_than_points(self, rng):
        data = rng.normal(size=(5, 4))
        result = kmeans(data, k=8, seed=0)
        assert result.codewords.shape == (8, 4)
        assert result.sse < 1e-20

    def test_assignments_are_nearest(self, rng):
        data = rng.normal(size=(100, 6))
        result = kmeans(data, k=10, seed=1)
        assert np.array_equal(result.assignments, assign_to_nearest(data, result.codewords))

    def test_empty_cluster_keeps_previous_codeword(self, rng):
        data = rng.normal(size=(10, 3))
        previous = rng.normal(size=(4, 3))
        assignments = np.zeros(10, dtype=int)  # clusters 1..3 empty
        updated = update_codewords(data, assignments, 4, previous)
        assert np.allclose(updated[1:], previous[1:])
        assert np.allclose(updated[0], data.mean(axis=0))

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            kmeans(rng.normal(size=(10,)), 2)
        with pytest.raises(ValueError):
            kmeans(rng.normal(size=(10, 4)), 0)
        with pytest.raises(ValueError):
            kmeans(rng.normal(size=(10, 4)), 2, init_codewords=np.zeros((3, 4)))

    def test_deterministic_given_seed(self, rng):
        data = rng.normal(size=(200, 8))
        a = kmeans(data, 16, seed=5)
        b = kmeans(data, 16, seed=5)
        assert np.allclose(a.codewords, b.codewords)
        assert np.array_equal(a.assignments, b.assignments)

    def test_zero_iterations_returns_init_assignment(self, rng):
        """max_iterations=0 performs no update: the result is the data
        assigned to the *initial* codewords, with iterations == 0."""
        data = rng.normal(size=(50, 4))
        init = rng.normal(size=(6, 4))
        result = kmeans(data, 6, max_iterations=0, init_codewords=init)
        assert result.iterations == 0
        assert np.allclose(result.codewords, init)
        assert np.array_equal(result.assignments, assign_to_nearest(data, init))
        with pytest.raises(ValueError):
            kmeans(data, 6, max_iterations=-1)

    def test_chunked_assignment_matches_unchunked(self, rng):
        data = rng.normal(size=(333, 8))
        codewords = rng.normal(size=(16, 8))
        full = assign_to_nearest(data, codewords)
        # a tiny budget forces many row blocks; per-row arithmetic is the same
        chunked = assign_to_nearest(data, codewords, block_bytes=1024)
        assert np.array_equal(full, chunked)

    def test_kmeanspp_init_runs_and_clusters(self, rng):
        data, _ = well_separated_clusters(rng)
        result = kmeans(data, 4, seed=0, init="kmeans++")
        recon = result.codewords[result.assignments]
        assert np.mean((data - recon) ** 2) < 0.01
        a = kmeans(data, 4, seed=3, init="kmeans++")
        b = kmeans(data, 4, seed=3, init="kmeans++")
        assert np.allclose(a.codewords, b.codewords)
        with pytest.raises(ValueError):
            kmeans(data, 4, init="warmstart")

    def test_minibatch_mode_approximates_full(self, rng):
        data, _ = well_separated_clusters(rng, per_cluster=100)
        full = kmeans(data, 4, seed=0)
        mb = kmeans(data, 4, seed=0, minibatch=64, max_iterations=50)
        assert mb.iterations == 50
        assert mb.sse <= full.sse * 2.0 + 1.0


class TestMaskedKMeans:
    def test_matches_plain_kmeans_with_full_mask(self, rng):
        data = rng.normal(size=(200, 8))
        mask = np.ones_like(data, dtype=bool)
        init = data[:16].copy()
        plain = kmeans(data, 16, seed=0, init_codewords=init)
        masked = masked_kmeans(data, mask, 16, seed=0, init_codewords=init)
        assert np.allclose(plain.codewords, masked.codewords)
        assert np.array_equal(plain.assignments, masked.assignments)
        assert np.isclose(plain.sse, masked.sse)

    def test_masked_distance_ignores_pruned_positions(self, rng):
        data = np.array([[1.0, 0.0], [1.0, 0.0]])
        mask = np.array([[True, False], [True, True]])
        codewords = np.array([[1.0, 100.0]])
        dist = masked_distances(data, mask, codewords)
        assert np.isclose(dist[0, 0], 0.0)          # pruned position excluded
        assert np.isclose(dist[1, 0], 100.0**2)     # unpruned position counted

    def test_masked_assign_brute_force_equivalence(self, rng):
        """Vectorised masked assignment equals the explicit per-pair distance."""
        data = rng.normal(size=(40, 8))
        mask = nm_prune_mask(data, 2, 4)
        data = data * mask
        codewords = rng.normal(size=(6, 8))
        fast = masked_assign(data, mask, codewords)
        brute = np.array([
            np.argmin([np.sum((data[j] - c * mask[j]) ** 2) for c in codewords])
            for j in range(data.shape[0])
        ])
        assert np.array_equal(fast, brute)

    def test_masked_update_is_elementwise_mean_of_kept(self):
        data = np.array([[2.0, 0.0], [4.0, 6.0]])
        mask = np.array([[True, False], [True, True]])
        assignments = np.array([0, 0])
        updated = masked_update(data, mask, assignments, 1, np.zeros((1, 2)))
        assert np.allclose(updated[0], [3.0, 6.0])   # second coord averages one value

    def test_masked_update_empty_coordinate_keeps_previous(self):
        data = np.array([[1.0, 0.0]])
        mask = np.array([[True, False]])
        previous = np.array([[9.0, 9.0]])
        updated = masked_update(data, mask, np.array([0]), 1, previous)
        assert updated[0, 1] == 9.0

    def test_lower_masked_sse_than_common_kmeans(self, rng):
        """The paper's core claim: masked k-means approximates kept weights better."""
        data = rng.normal(size=(600, 16))
        mask = nm_prune_mask(data, 4, 16)
        sparse = data * mask
        k = 32
        init = sparse[:k].copy()
        common = kmeans(sparse, k, seed=0, init_codewords=init)
        masked = masked_kmeans(sparse, mask, k, seed=0, init_codewords=init)
        common_recon = common.codewords[common.assignments] * mask
        masked_recon = masked.codewords[masked.assignments] * mask
        assert masked_sse(sparse, masked_recon, mask) < masked_sse(sparse, common_recon, mask)

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            masked_kmeans(rng.normal(size=(10, 4)), np.ones((10, 8), dtype=bool), 2)

    @given(k=st.sampled_from([2, 4, 8]), n=st.integers(20, 60))
    @settings(max_examples=15, deadline=None)
    def test_masked_sse_nonincreasing_in_k_property(self, k, n):
        rng = np.random.default_rng(7)
        data = rng.normal(size=(n, 8))
        mask = nm_prune_mask(data, 2, 4)
        small = masked_kmeans(data * mask, mask, k, seed=3)
        large = masked_kmeans(data * mask, mask, k * 2, seed=3)
        # more codewords should not make the clustering error much worse
        assert large.sse <= small.sse * 1.05

    def test_zero_iterations_returns_init_assignment(self, rng):
        data = rng.normal(size=(60, 8))
        mask = nm_prune_mask(data, 2, 8)
        init = rng.normal(size=(8, 8))
        result = masked_kmeans(data * mask, mask, 8, max_iterations=0,
                               init_codewords=init)
        assert result.iterations == 0
        assert np.allclose(result.codewords, init)
        assert np.array_equal(result.assignments,
                              masked_assign(data * mask, mask, init))
        with pytest.raises(ValueError):
            masked_kmeans(data * mask, mask, 8, max_iterations=-1)

    def test_fully_masked_coordinate_keeps_init_value(self, rng):
        """A coordinate pruned in every subvector never moves any codeword
        coordinate away from its initial value."""
        data = rng.normal(size=(80, 4))
        mask = np.ones_like(data, dtype=bool)
        mask[:, 2] = False  # coordinate 2 pruned everywhere
        init = rng.normal(size=(5, 4))
        result = masked_kmeans(data * mask, mask, 5, max_iterations=20,
                               init_codewords=init)
        assert np.allclose(result.codewords[:, 2], init[:, 2])
        # and the masked SSE ignores that coordinate entirely
        recon = result.codewords[result.assignments]
        assert np.isclose(result.sse, masked_sse(data * mask, recon, mask))

    def test_empty_cluster_keeps_previous_codeword_full_run(self, rng):
        """With far more codewords than occupied clusters, the empty clusters
        survive a full run holding their initial codewords."""
        base = rng.normal(size=(2, 4))
        data = np.repeat(base, 20, axis=0)          # only 2 distinct points
        mask = np.ones_like(data, dtype=bool)
        init = rng.normal(size=(6, 4)) + 100.0      # far away: most stay empty
        init[0], init[1] = base[0], base[1]
        result = masked_kmeans(data, mask, 6, max_iterations=10,
                               init_codewords=init)
        occupied = np.unique(result.assignments)
        empty = np.setdiff1d(np.arange(6), occupied)
        assert empty.size > 0
        assert np.allclose(result.codewords[empty], init[empty])

    def test_chunked_vs_unchunked_distance_paths(self, rng):
        """masked_assign under a tiny block budget == argmin of the full
        masked_distances matrix == unchunked masked_assign."""
        data = rng.normal(size=(257, 8))
        mask = nm_prune_mask(data, 2, 8)
        data = data * mask
        codewords = rng.normal(size=(12, 8))
        unchunked = masked_assign(data, mask, codewords)
        chunked = masked_assign(data, mask, codewords, block_bytes=1024)
        reference = np.argmin(masked_distances(data, mask, codewords), axis=1)
        assert np.array_equal(unchunked, chunked)
        assert np.array_equal(unchunked, reference)

    def test_masked_kmeanspp_and_minibatch(self, rng):
        data = rng.normal(size=(400, 8))
        mask = nm_prune_mask(data, 2, 8)
        kpp = masked_kmeans(data * mask, mask, 16, seed=0, init="kmeans++")
        assert np.isfinite(kpp.sse)
        mb = masked_kmeans(data * mask, mask, 16, seed=0, minibatch=128,
                           max_iterations=30)
        full = masked_kmeans(data * mask, mask, 16, seed=0)
        assert mb.sse <= full.sse * 2.0 + 1.0

    def test_reported_sse_is_masked_sse(self, rng):
        data = rng.normal(size=(100, 8))
        mask = nm_prune_mask(data, 2, 8)
        result = masked_kmeans(data * mask, mask, 8, seed=0)
        recon = result.codewords[result.assignments]
        assert np.isclose(result.sse, masked_sse(data * mask, recon, mask))


class TestMetrics:
    def test_total_and_masked_sse(self, rng):
        original = rng.normal(size=(10, 4))
        recon = original + 1.0
        mask = np.zeros_like(original, dtype=bool)
        mask[:, 0] = True
        assert np.isclose(total_sse(original, recon), original.size)
        assert np.isclose(masked_sse(original, recon, mask), 10)

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            total_sse(rng.normal(size=(3, 3)), rng.normal(size=(3, 4)))
        with pytest.raises(ValueError):
            masked_sse(np.zeros((2, 2)), np.zeros((2, 2)), np.ones((3, 3), dtype=bool))
