"""Tests for mixed layer-wise N:M search and compressed-model serialization."""

import numpy as np
import pytest

from repro.core import LayerCompressionConfig, MVQCompressor
from repro.core.mixed_sparsity import (
    LayerSparsityChoice,
    MixedSparsitySearch,
    layer_pruning_error,
    overall_sparsity,
)
from repro.core.serialization import (
    compressed_file_size_bytes,
    load_compressed_model,
    save_compressed_model,
)
from repro.nn.models import resnet18_mini


class TestLayerPruningError:
    def test_zero_for_already_sparse_layer(self, rng):
        weight = rng.normal(size=(16, 4, 3, 3))
        # prune to 4:16 first; re-pruning with the same pattern removes nothing
        from repro.core.pruning import asp_prune
        sparse = asp_prune(weight, 4, 16, d=16)
        assert layer_pruning_error(sparse, 4, 16, 16) < 1e-12

    def test_increases_with_sparsity(self, rng):
        weight = rng.normal(size=(16, 4, 3, 3))
        errors = [layer_pruning_error(weight, n, 16, 16) for n in (8, 4, 2)]
        assert errors[0] < errors[1] < errors[2]

    def test_bounded_between_zero_and_one(self, rng):
        weight = rng.normal(size=(16, 2, 3, 3))
        err = layer_pruning_error(weight, 4, 16, 16)
        assert 0.0 <= err <= 1.0

    def test_zero_weight_layer(self):
        assert layer_pruning_error(np.zeros((16, 2, 3, 3)), 4, 16, 16) == 0.0


class TestMixedSparsitySearch:
    def test_all_layers_assigned(self):
        model = resnet18_mini(num_classes=5, seed=0)
        search = MixedSparsitySearch(candidates=(8, 6, 4), m=16, d=16)
        choices = search.search(model)
        assert len(choices) > 0
        assert all(isinstance(c, LayerSparsityChoice) for c in choices.values())
        assert all(c.n_keep in (8, 6, 4) for c in choices.values())

    def test_target_sparsity_respected(self):
        model = resnet18_mini(num_classes=5, seed=0)
        search = MixedSparsitySearch(candidates=(8, 6, 4, 2), m=16, d=16,
                                     error_tolerance=1.0, target_sparsity=0.6)
        choices = search.search(model)
        assert overall_sparsity(choices) >= 0.5   # at or just past the target step

    def test_tight_tolerance_keeps_densest(self):
        model = resnet18_mini(num_classes=5, seed=0)
        search = MixedSparsitySearch(candidates=(8, 4), m=16, d=16, error_tolerance=1e-9)
        choices = search.search(model)
        assert all(c.n_keep == 8 for c in choices.values())

    def test_loose_tolerance_reaches_sparsest(self):
        model = resnet18_mini(num_classes=5, seed=0)
        search = MixedSparsitySearch(candidates=(8, 4), m=16, d=16, error_tolerance=1.0)
        choices = search.search(model)
        assert all(c.n_keep == 4 for c in choices.values())

    def test_overrides_feed_compressor(self):
        model = resnet18_mini(num_classes=5, seed=0)
        search = MixedSparsitySearch(candidates=(8, 4), m=16, d=16, error_tolerance=1.0)
        choices = search.search(model)
        base = LayerCompressionConfig(k=16, d=16, n_keep=8, m=16, max_kmeans_iterations=10)
        overrides = search.to_layer_overrides(choices, base)
        compressed = MVQCompressor(base, per_layer_overrides=overrides).compress(model)
        assert np.isclose(compressed.sparsity(), 0.75, atol=0.05)

    def test_invalid_candidates(self):
        with pytest.raises(ValueError):
            MixedSparsitySearch(candidates=(), m=16)
        with pytest.raises(ValueError):
            MixedSparsitySearch(candidates=(20,), m=16)


class TestSerialization:
    def _compressed(self, crosslayer=False):
        model = resnet18_mini(num_classes=5, seed=0)
        cfg = LayerCompressionConfig(k=16, d=8, n_keep=2, m=8, max_kmeans_iterations=10)
        return model, MVQCompressor(cfg, crosslayer=crosslayer).compress(model)

    def test_roundtrip_reconstruction_identical(self, tmp_path):
        model, compressed = self._compressed()
        path = tmp_path / "model.npz"
        save_compressed_model(compressed, path)
        restored = load_compressed_model(model, path)
        for name, state in compressed.layers.items():
            assert np.allclose(state.reconstruct_weight(),
                               restored.layers[name].reconstruct_weight())
        assert np.isclose(restored.compression_ratio(), compressed.compression_ratio(), rtol=0.01)

    def test_crosslayer_roundtrip_shares_codebook(self, tmp_path):
        model, compressed = self._compressed(crosslayer=True)
        path = tmp_path / "crosslayer.npz"
        save_compressed_model(compressed, path)
        restored = load_compressed_model(model, path)
        ids = {id(state.codebook) for state in restored}
        assert len(ids) == 1
        assert restored.crosslayer

    def test_file_is_actually_small(self, tmp_path):
        model, compressed = self._compressed()
        path = tmp_path / "model.npz"
        save_compressed_model(compressed, path)
        dense_bytes = sum(
            dict(model.named_modules())[name].weight.value.size * 4
            for name in compressed.layers
        )
        assert compressed_file_size_bytes(path) < dense_bytes / 3

    def test_wrong_model_raises(self, tmp_path):
        from repro.nn.models import mobilenet_v1_mini

        model, compressed = self._compressed()
        path = tmp_path / "model.npz"
        save_compressed_model(compressed, path)
        with pytest.raises(KeyError):
            load_compressed_model(mobilenet_v1_mini(num_classes=5), path)

    def test_apply_restored_model(self, tmp_path):
        model, compressed = self._compressed()
        path = tmp_path / "model.npz"
        save_compressed_model(compressed, path)
        fresh = resnet18_mini(num_classes=5, seed=0)
        restored = load_compressed_model(fresh, path)
        restored.apply_to_model()
        modules = dict(fresh.named_modules())
        for name, state in restored.layers.items():
            assert np.allclose(modules[name].weight.value, state.reconstruct_weight())
