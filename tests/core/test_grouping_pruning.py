"""Tests for weight grouping and N:M pruning, including property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.grouping import (
    GroupingStrategy,
    compatible_d,
    group_weight,
    grouped_shape,
    ungroup_weight,
)
from repro.core.pruning import (
    SparseFinetuner,
    apply_mask,
    asp_prune,
    nm_prune_mask,
    sparsity_of_mask,
)
from repro.nn.models import resnet18_mini


class TestGrouping:
    @pytest.mark.parametrize("strategy,d", [
        (GroupingStrategy.OUTPUT, 8),
        (GroupingStrategy.INPUT, 4),
        (GroupingStrategy.KERNEL, 9),
    ])
    def test_roundtrip(self, rng, strategy, d):
        weight = rng.normal(size=(16, 8, 3, 3))
        grouped = group_weight(weight, d, strategy)
        assert grouped.shape == grouped_shape(weight.shape, d, strategy)
        restored = ungroup_weight(grouped, weight.shape, d, strategy)
        assert np.allclose(restored, weight)

    def test_output_grouping_spans_output_channels(self, rng):
        """A subvector must hold d consecutive output channels at one position."""
        weight = rng.normal(size=(8, 2, 1, 1))
        grouped = group_weight(weight, 4, GroupingStrategy.OUTPUT)
        # first subvector = output channels 0..3 at (cin=0, kh=0, kw=0)
        assert np.allclose(grouped[0], weight[0:4, 0, 0, 0])

    def test_kernel_grouping_is_kernel_plane(self, rng):
        weight = rng.normal(size=(4, 2, 3, 3))
        grouped = group_weight(weight, 9, GroupingStrategy.KERNEL)
        assert np.allclose(grouped[0], weight[0, 0].reshape(-1))

    def test_linear_weight_as_1x1(self, rng):
        weight = rng.normal(size=(16, 10))
        grouped = group_weight(weight, 8, GroupingStrategy.OUTPUT)
        assert grouped.shape == (2 * 10, 8)
        assert np.allclose(ungroup_weight(grouped, weight.shape, 8), weight)

    def test_incompatible_d_raises(self, rng):
        weight = rng.normal(size=(6, 4, 3, 3))
        with pytest.raises(ValueError):
            group_weight(weight, 4, GroupingStrategy.OUTPUT)
        with pytest.raises(ValueError):
            group_weight(weight, 4, GroupingStrategy.KERNEL)
        assert not compatible_d(weight.shape, 4, GroupingStrategy.OUTPUT)
        assert compatible_d(weight.shape, 2, GroupingStrategy.OUTPUT)

    def test_wrong_grouped_shape_raises(self, rng):
        with pytest.raises(ValueError):
            ungroup_weight(rng.normal(size=(3, 8)), (16, 8, 3, 3), 8)

    @given(cout_factor=st.integers(1, 4), cin=st.integers(1, 6),
           k=st.sampled_from([1, 3]), d=st.sampled_from([2, 4, 8]))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, cout_factor, cin, k, d):
        """group/ungroup is the identity for every compatible shape."""
        rng = np.random.default_rng(0)
        weight = rng.normal(size=(cout_factor * d, cin, k, k))
        grouped = group_weight(weight, d, GroupingStrategy.OUTPUT)
        assert np.allclose(ungroup_weight(grouped, weight.shape, d), weight)


class TestNMPruning:
    def test_exact_sparsity(self, rng):
        grouped = rng.normal(size=(100, 16))
        mask = nm_prune_mask(grouped, 4, 16)
        assert np.isclose(sparsity_of_mask(mask), 0.75)
        assert np.all(mask.sum(axis=1) == 4)

    def test_keeps_largest_magnitudes(self):
        grouped = np.array([[0.1, -5.0, 0.2, 3.0]])
        mask = nm_prune_mask(grouped, 2, 4)
        assert np.array_equal(mask[0], [False, True, False, True])

    def test_blockwise_constraint(self, rng):
        """With M=4 and d=8, each 4-element block keeps exactly N weights."""
        grouped = rng.normal(size=(50, 8))
        mask = nm_prune_mask(grouped, 1, 4)
        blocks = mask.reshape(50, 2, 4)
        assert np.all(blocks.sum(axis=2) == 1)

    def test_invalid_parameters(self, rng):
        grouped = rng.normal(size=(10, 8))
        with pytest.raises(ValueError):
            nm_prune_mask(grouped, 0, 4)
        with pytest.raises(ValueError):
            nm_prune_mask(grouped, 5, 4)
        with pytest.raises(ValueError):
            nm_prune_mask(grouped, 2, 3)  # d=8 not a multiple of 3
        with pytest.raises(ValueError):
            nm_prune_mask(rng.normal(size=(10,)), 2, 4)

    def test_apply_mask_zeroes_pruned(self, rng):
        grouped = rng.normal(size=(20, 8))
        mask = nm_prune_mask(grouped, 2, 8)
        pruned = apply_mask(grouped, mask)
        assert np.all(pruned[~mask] == 0)
        assert np.allclose(pruned[mask], grouped[mask])

    def test_apply_mask_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            apply_mask(rng.normal(size=(4, 8)), np.ones((4, 4), dtype=bool))

    @given(n_keep=st.integers(1, 4), blocks=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_sparsity_property(self, n_keep, blocks):
        """Sparsity always equals 1 - N/M regardless of the data."""
        m = 4
        rng = np.random.default_rng(42)
        grouped = rng.normal(size=(30, m * blocks))
        mask = nm_prune_mask(grouped, n_keep, m)
        assert np.isclose(sparsity_of_mask(mask), 1 - n_keep / m)

    def test_asp_prune_full_tensor(self, rng):
        weight = rng.normal(size=(16, 4, 3, 3))
        pruned = asp_prune(weight, 2, 8, d=8)
        assert np.isclose(np.mean(pruned == 0), 0.75, atol=0.02)
        # surviving weights are untouched
        assert np.allclose(pruned[pruned != 0], weight[pruned != 0])


class TestSparseFinetuner:
    def test_apply_enforces_sparsity(self):
        model = resnet18_mini(num_classes=3, seed=0)
        finetuner = SparseFinetuner(model, n_keep=2, m=8, d=8)
        finetuner.apply()
        assert np.isclose(finetuner.model_sparsity(), 0.75, atol=0.01)

    def test_frozen_mask_mode(self):
        model = resnet18_mini(num_classes=3, seed=0)
        finetuner = SparseFinetuner(model, n_keep=4, m=8, d=8, sr_ste=False)
        finetuner.apply()
        masks_before = finetuner.masks()
        # perturb weights; ASP keeps the original masks
        for p in model.parameters():
            p.value += 0.01
        finetuner.apply()
        masks_after = finetuner.masks()
        for name in masks_before:
            assert np.array_equal(masks_before[name], masks_after[name])

    def test_prunable_layers_skips_depthwise_and_incompatible(self):
        from repro.nn.models import mobilenet_v1_mini

        model = mobilenet_v1_mini(num_classes=3)
        finetuner = SparseFinetuner(model, n_keep=2, m=8, d=8)
        names = [name for name, _ in finetuner.prunable_layers()]
        assert names  # pointwise convolutions are prunable
        modules = dict(model.named_modules())
        assert all(not getattr(modules[n], "depthwise", False) for n in names)

    def test_skip_layers_respected(self):
        model = resnet18_mini(num_classes=3, seed=0)
        all_names = [n for n, _ in SparseFinetuner(model, 2, 8, 8).prunable_layers()]
        skipped = SparseFinetuner(model, 2, 8, 8, skip_layers={all_names[0]})
        assert all_names[0] not in [n for n, _ in skipped.prunable_layers()]
