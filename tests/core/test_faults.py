"""Fault-injection framework: determinism, kinds, budgets, installation."""

import threading

import numpy as np
import pytest

from repro.core.faults import (
    FAULT_POINTS,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    fault_point,
    install_plan,
    make_error,
    register_error_type,
)


def _fire_sequence(plan, point, visits):
    """Which visit indices inject, for a fresh copy of ``plan``."""
    fired = []
    with plan.active():
        for i in range(visits):
            try:
                fault_point(point)
            except InjectedFault:
                fired.append(i)
    return fired


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        rules = [FaultRule("p", probability=0.3)]
        a = _fire_sequence(FaultPlan(rules, seed=7), "p", 200)
        b = _fire_sequence(FaultPlan(rules, seed=7), "p", 200)
        assert a == b
        assert a, "0.3 over 200 visits must fire at least once"

    def test_different_seed_different_decisions(self):
        rules = [FaultRule("p", probability=0.3)]
        a = _fire_sequence(FaultPlan(rules, seed=1), "p", 200)
        b = _fire_sequence(FaultPlan(rules, seed=2), "p", 200)
        assert a != b

    def test_rate_roughly_matches_probability(self):
        fired = _fire_sequence(
            FaultPlan([FaultRule("p", probability=0.25)], seed=0), "p", 2000)
        assert 0.18 < len(fired) / 2000 < 0.32

    def test_reset_replays_identically(self):
        plan = FaultPlan([FaultRule("p", probability=0.5)], seed=3)
        first = _fire_sequence(plan, "p", 50)
        plan.reset()
        again = _fire_sequence(plan, "p", 50)
        assert first == again

    def test_decisions_independent_per_point(self):
        plan = FaultPlan([FaultRule("*", probability=0.5)], seed=5)
        with plan.active():
            outcomes = {}
            for point in ("a", "b"):
                hits = []
                for i in range(64):
                    try:
                        fault_point(point)
                    except InjectedFault:
                        hits.append(i)
                outcomes[point] = hits
        assert outcomes["a"] != outcomes["b"]

    def test_thread_parallel_visits_keep_aggregate_counts(self):
        plan = FaultPlan([FaultRule("p", probability=0.5)], seed=9)
        errors = []

        def worker():
            for _ in range(100):
                try:
                    with_lock = fault_point("p")  # noqa: F841
                except InjectedFault:
                    errors.append(1)

        with plan.active():
            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(10.0)
        summary = plan.summary()
        assert summary["visits"]["p"] == 400
        assert summary["injections"]["p"] == len(errors)
        # the injected *count* is scheduling-independent: decision i is a pure
        # function of (seed, point, i)
        reference = _fire_sequence(FaultPlan(plan.rules, seed=9), "p", 400)
        assert len(reference) == len(errors)


class TestKinds:
    def test_error_raises_injected_fault_with_point(self):
        plan = FaultPlan([FaultRule("x.y", probability=1.0)])
        with plan.active():
            with pytest.raises(InjectedFault) as info:
                fault_point("x.y")
        assert info.value.point == "x.y"
        assert info.value.tag == "fault"

    def test_registered_error_tag_raises_custom_type(self):
        class Custom(RuntimeError):
            pass

        register_error_type("custom-test", lambda point: Custom(point))
        try:
            plan = FaultPlan([FaultRule("p", error="custom-test")])
            with plan.active():
                with pytest.raises(Custom):
                    fault_point("p")
        finally:
            from repro.core import faults
            faults._ERROR_TYPES.pop("custom-test", None)
        # unregistered tags fall back to InjectedFault, carrying the tag
        err = make_error("nobody-registered-this", "p")
        assert isinstance(err, InjectedFault) and err.tag == "nobody-registered-this"

    def test_delay_sleeps_and_passes_payload_through(self):
        import time
        plan = FaultPlan([FaultRule("p", kind="delay", delay_ms=20.0)])
        with plan.active():
            start = time.perf_counter()
            out = fault_point("p", b"payload")
            elapsed = time.perf_counter() - start
        assert out == b"payload"
        assert elapsed >= 0.015

    def test_corrupt_bytes_differ_and_are_deterministic(self):
        payload = b"hello world " * 10
        outs = []
        for _ in range(2):
            plan = FaultPlan([FaultRule("p", kind="corrupt")], seed=4)
            with plan.active():
                outs.append(fault_point("p", payload))
        assert outs[0] != payload
        assert len(outs[0]) == len(payload)
        assert outs[0] == outs[1]

    def test_corrupt_ndarray_changes_values_keeps_shape(self):
        payload = np.arange(32, dtype=np.float64).reshape(4, 8)
        plan = FaultPlan([FaultRule("p", kind="corrupt")], seed=1)
        with plan.active():
            out = fault_point("p", payload)
        assert out.shape == payload.shape and out.dtype == payload.dtype
        assert not np.array_equal(out, payload)

    def test_corrupt_without_payload_is_a_type_error(self):
        plan = FaultPlan([FaultRule("p", kind="corrupt")])
        with plan.active():
            with pytest.raises(TypeError):
                fault_point("p")


class TestRulesAndBudgets:
    def test_fnmatch_pattern_arms_matching_points_only(self):
        plan = FaultPlan([FaultRule("serve.replica.*", probability=1.0)])
        with plan.active():
            with pytest.raises(InjectedFault):
                fault_point("serve.replica.forward")
            fault_point("artifacts.store.write")  # unmatched: passes
        assert plan.injections_at("serve.replica.forward") == 1
        assert plan.injections_at("artifacts.store.write") == 0

    def test_max_injections_budget(self):
        plan = FaultPlan([FaultRule("p", probability=1.0, max_injections=2)])
        fired = 0
        with plan.active():
            for _ in range(10):
                try:
                    fault_point("p")
                except InjectedFault:
                    fired += 1
        assert fired == 2

    def test_first_matching_firing_rule_wins(self):
        class Marker(RuntimeError):
            pass

        register_error_type("marker-test", lambda point: Marker(point))
        try:
            plan = FaultPlan([
                FaultRule("p", probability=1.0, error="marker-test"),
                FaultRule("p", probability=1.0),
            ])
            with plan.active():
                with pytest.raises(Marker):
                    fault_point("p")
        finally:
            from repro.core import faults
            faults._ERROR_TYPES.pop("marker-test", None)

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            FaultRule("p", probability=1.5)
        with pytest.raises(ValueError):
            FaultRule("p", kind="explode")
        with pytest.raises(ValueError):
            FaultRule("p", delay_ms=-1)

    def test_round_trip_serialization(self):
        plan = FaultPlan([FaultRule("a.*", probability=0.25, kind="delay",
                                    delay_ms=3.0, max_injections=5)], seed=11)
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.seed == 11
        assert clone.rules == plan.rules
        with pytest.raises(ValueError):
            FaultRule.from_dict({"point": "p", "banana": 1})


class TestInstallation:
    def test_disabled_fault_point_is_identity(self):
        assert active_plan() is None
        assert fault_point("anything", "payload") == "payload"
        assert fault_point("anything") is None

    def test_active_restores_previous_plan(self):
        outer = FaultPlan([], seed=0)
        inner = FaultPlan([], seed=1)
        with outer.active():
            assert active_plan() is outer
            with inner.active():
                assert active_plan() is inner
            assert active_plan() is outer
        assert active_plan() is None

    def test_install_plan_returns_previous(self):
        plan = FaultPlan([], seed=0)
        assert install_plan(plan) is None
        try:
            assert active_plan() is plan
        finally:
            assert install_plan(None) is plan
        assert active_plan() is None

    def test_instrumented_points_are_registered(self):
        # the registry is what the README documents; the points the serving,
        # artifact and explore layers instrument must appear in it
        for name in ("serve.replica.forward", "serve.replica.warmup",
                     "artifacts.store.write", "artifacts.store.read",
                     "explore.candidate.eval"):
            assert name in FAULT_POINTS
