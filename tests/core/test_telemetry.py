"""Unit tests for :mod:`repro.core.telemetry` (tracing + metrics core)."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.core import telemetry


@pytest.fixture(autouse=True)
def _no_global_tracer():
    """Every test starts and ends with tracing disabled."""
    telemetry.disable()
    yield
    telemetry.disable()


# -- quantile (the shared percentile implementation) ---------------------------

class TestQuantile:
    def test_matches_numpy_percentile(self):
        rng = np.random.default_rng(7)
        values = rng.normal(size=257).tolist()
        for q in (0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
            assert telemetry.quantile(values, q) == pytest.approx(
                np.percentile(values, q * 100.0), abs=1e-12)

    def test_single_value(self):
        assert telemetry.quantile([3.5], 0.99) == 3.5

    def test_unsorted_input(self):
        assert telemetry.quantile([9.0, 1.0, 5.0], 0.5) == 5.0

    def test_empty_returns_zero(self):
        # matches the serving-metrics convention: no samples -> 0.0
        assert telemetry.quantile([], 0.5) == 0.0

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            telemetry.quantile([1.0], 1.5)


# -- spans, nesting, buffer ----------------------------------------------------

class TestTracer:
    def test_span_records_complete_event(self):
        tracer = telemetry.Tracer()
        with tracer.span("work", {"k": 8}) as sp:
            sp.set_attribute("extra", True)
        (record,) = tracer.records()
        assert record["ph"] == "X"
        assert record["name"] == "work"
        assert record["dur"] >= 0
        assert record["args"] == {"k": 8, "extra": True}
        assert record["parent"] is None

    def test_nested_spans_link_parents(self):
        tracer = telemetry.Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.records()  # inner finishes first
        assert inner["name"] == "inner"
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None
        # the child's window sits inside the parent's
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    def test_parent_stack_is_thread_local(self):
        tracer = telemetry.Tracer()
        seen = {}

        def other():
            with tracer.span("other-thread"):
                seen["parent"] = tracer.current_span()

        with tracer.span("main-thread"):
            t = threading.Thread(target=other)
            t.start()
            t.join()
        by_name = {r["name"]: r for r in tracer.records()}
        assert by_name["other-thread"]["parent"] is None
        assert by_name["other-thread"]["tid"] != by_name["main-thread"]["tid"]

    def test_exception_pops_stack_and_flags_error(self):
        tracer = telemetry.Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        (record,) = tracer.records()
        assert record["args"].get("error") == "RuntimeError"
        assert tracer.current_span() is None

    def test_buffer_is_bounded_and_counts_drops(self):
        tracer = telemetry.Tracer(buffer_size=16)
        for i in range(50):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.records()) == 16
        assert tracer.dropped == 34
        # the newest records survive, the oldest are evicted
        assert tracer.records()[-1]["name"] == "s49"

    def test_counters_and_gauges(self):
        tracer = telemetry.Tracer()
        tracer.counter_add("hits")
        tracer.counter_add("hits", 2)
        tracer.gauge_set("depth", 7)
        summary = tracer.summary()
        assert summary["counters"]["hits"] == 3
        assert summary["gauges"]["depth"] == 7

    def test_record_span_explicit_window(self):
        tracer = telemetry.Tracer()
        tracer.record_span("queue_wait", 10.0, 10.5, tid=42,
                           thread="client", attrs={"id": 1})
        (record,) = tracer.records()
        assert record["ts"] == 10.0
        assert record["dur"] == 0.5
        assert record["tid"] == 42
        assert record["thread"] == "client"

    def test_record_span_clamps_negative_duration(self):
        tracer = telemetry.Tracer()
        tracer.record_span("skewed", 10.0, 9.0)
        assert tracer.records()[0]["dur"] == 0.0

    def test_event_and_drain(self):
        tracer = telemetry.Tracer()
        tracer.event("fault.injected", {"point": "x"})
        records = tracer.drain()
        assert len(records) == 1 and records[0]["ph"] == "i"
        assert tracer.records() == []


# -- exporters -----------------------------------------------------------------

class TestExport:
    def _traced(self):
        tracer = telemetry.Tracer(process_name="test-proc")
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tracer.event("tick")
        return tracer

    def test_chrome_trace_validates(self):
        trace = self._traced().chrome_trace()
        assert telemetry.validate_chrome_trace(trace) == []

    def test_chrome_trace_has_metadata_and_tracks(self, tmp_path):
        tracer = self._traced()
        out = tmp_path / "trace.json"
        tracer.export_chrome(out)
        data = json.loads(out.read_text())
        phases = [e["ph"] for e in data["traceEvents"]]
        assert "M" in phases and "X" in phases and "i" in phases
        names = [e["args"]["name"] for e in data["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"]
        assert "test-proc" in names

    def test_chrome_trace_ts_rebased_to_epoch(self):
        data = self._traced().chrome_trace()
        ts = [e["ts"] for e in data["traceEvents"] if e["ph"] != "M"]
        assert all(t >= 0 for t in ts)
        assert ts == sorted(ts)

    def test_jsonl_export_has_summary_tail(self, tmp_path):
        tracer = self._traced()
        tracer.counter_add("n", 5)
        out = tmp_path / "trace.jsonl"
        tracer.export_jsonl(out)
        lines = [json.loads(line)
                 for line in out.read_text().splitlines()]
        assert lines[-1]["ph"] == "summary"
        assert lines[-1]["counters"] == {"n": 5}
        assert sum(1 for l in lines if l.get("ph") == "X") == 2

    def test_validate_rejects_bad_traces(self):
        assert telemetry.validate_chrome_trace({"traceEvents": "nope"})
        assert telemetry.validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "a", "pid": 1, "tid": 1,
                              "ts": 5.0, "dur": -1.0}]})
        assert telemetry.validate_chrome_trace(
            {"traceEvents": [{"ph": "B", "name": "a", "pid": 1, "tid": 1,
                              "ts": 0.0}]})  # unbalanced B


# -- cross-process merge -------------------------------------------------------

class TestMerge:
    def test_merge_shifts_clock_and_drops_parent_links(self):
        parent = telemetry.Tracer()
        child = telemetry.Tracer()
        with child.span("remote"):
            pass
        records = child.drain()
        before = records[0]["ts"]
        merged = parent.merge(records, clock_offset_s=100.0,
                              process_name="worker-0")
        assert merged == 1
        (record,) = parent.records()
        assert record["ts"] == pytest.approx(before + 100.0)
        assert record["parent"] is None

    def test_fit_clock_offset_brackets_child_in_parent(self):
        # parent saw the IPC window [10, 20] on its clock; the child's
        # clock says it worked [1010.2, 1019.8] — offset should be ~ -1000
        windows = [(10.0, 20.0, 1010.2, 1019.8)]
        offset = telemetry.fit_clock_offset(windows)
        assert offset is not None
        assert 10.0 <= 1010.2 + offset
        assert 1019.8 + offset <= 20.0

    def test_fit_clock_offset_empty(self):
        assert telemetry.fit_clock_offset([]) is None


# -- module-level API: disabled fast path --------------------------------------

class TestGlobalAPI:
    def test_disabled_span_is_shared_noop(self):
        assert not telemetry.enabled()
        sp = telemetry.span("anything", k=1)
        assert sp is telemetry.NOOP
        # the no-op accepts the full Span surface
        with sp as inner:
            inner.set_attribute("x", 1)
        assert telemetry.current_span() is None

    def test_disabled_event_and_counters_are_noops(self):
        telemetry.event("e", a=1)
        telemetry.counter_add("c")
        telemetry.gauge_set("g", 2)
        telemetry.record_span("r", 0.0, 1.0)
        assert telemetry.active_tracer() is None

    def test_timed_span_measures_even_when_disabled(self):
        with telemetry.timed_span("stage") as sp:
            pass
        assert sp.duration_s >= 0.0

    def test_tracing_context_restores_previous(self):
        with telemetry.tracing() as outer:
            assert telemetry.active_tracer() is outer
            with telemetry.tracing() as inner:
                assert telemetry.active_tracer() is inner
            assert telemetry.active_tracer() is outer
        assert telemetry.active_tracer() is None

    def test_enabled_spans_record_through_module_api(self):
        with telemetry.tracing() as tracer:
            with telemetry.span("outer", stage="s"):
                with telemetry.span("inner"):
                    pass
            telemetry.event("tick")
        records = tracer.records()
        assert [r["name"] for r in records] == ["inner", "outer", "tick"]
        assert records[1]["args"] == {"stage": "s"}

    def test_traced_decorator(self):
        @telemetry.traced("custom.name")
        def f(x):
            return x + 1

        assert f(1) == 2  # disabled: plain call
        with telemetry.tracing() as tracer:
            assert f(2) == 3
        assert tracer.records()[0]["name"] == "custom.name"

    def test_span_points_are_registered(self):
        assert "pipeline.stage.<name>" in telemetry.SPAN_POINTS
        assert "serve.request" in telemetry.SPAN_POINTS
        assert "serve.worker.forward" in telemetry.SPAN_POINTS
        assert "explore.candidate" in telemetry.SPAN_POINTS
        assert "fault.injected" in telemetry.EVENT_POINTS


# -- summary -------------------------------------------------------------------

class TestSummary:
    def test_summary_tree_inclusive_exclusive(self):
        tracer = telemetry.Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        summary = tracer.summary()
        spans = summary["spans"]
        assert spans["child"]["parent"] == "parent"
        assert spans["parent"]["parent"] is None
        assert spans["parent"]["exclusive_ms"] <= spans["parent"]["total_ms"]
        assert summary["records"] == 2

    def test_format_summary_renders_tree(self):
        tracer = telemetry.Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        tracer.counter_add("hits", 3)
        lines = telemetry.format_summary(tracer.summary(), prefix="[t]")
        text = "\n".join(lines)
        assert "parent" in text and "child" in text and "hits" in text
        # the child renders indented deeper than its parent
        child_line = next(l for l in lines if "child" in l)
        parent_line = next(l for l in lines if "parent" in l)
        assert child_line.index("child") > parent_line.index("parent")
