"""Tests for codebook quantization and storage/compression-ratio accounting."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codebook import (
    Codebook,
    LSQScale,
    fit_scale_mse,
    quantize_symmetric,
    quantize_to_int,
)
from repro.core.storage import (
    CompressionSpec,
    MaskLUT,
    assignment_bits,
    codebook_bits,
    compression_ratio,
    mask_bits,
    mask_bits_per_weight,
)
from repro.core.pruning import nm_prune_mask


class TestSymmetricQuantization:
    def test_levels_within_range(self, rng):
        values = rng.normal(size=1000) * 3
        scale = fit_scale_mse(values, bits=8)
        levels = quantize_to_int(values, scale, bits=8)
        assert levels.max() <= 127 and levels.min() >= -128

    def test_quantize_dequantize_error_bounded(self, rng):
        values = rng.normal(size=500)
        scale = fit_scale_mse(values, bits=8)
        quantized = quantize_symmetric(values, scale, bits=8)
        # clipped tails aside, error is at most half a step
        inside = np.abs(values / scale) < 127
        assert np.max(np.abs(values[inside] - quantized[inside])) <= scale / 2 + 1e-12

    def test_more_bits_lower_error(self, rng):
        values = rng.normal(size=2000)
        errs = []
        for bits in (2, 4, 8):
            scale = fit_scale_mse(values, bits=bits)
            errs.append(np.mean((values - quantize_symmetric(values, scale, bits)) ** 2))
        assert errs[0] > errs[1] > errs[2]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            quantize_symmetric(np.ones(3), 0.0)
        with pytest.raises(ValueError):
            quantize_symmetric(np.ones(3), 1.0, bits=1)
        with pytest.raises(ValueError):
            quantize_to_int(np.ones(3), -1.0)

    def test_all_zero_values(self):
        assert fit_scale_mse(np.zeros(10)) == 1.0

    @given(st.integers(2, 8))
    @settings(max_examples=10, deadline=None)
    def test_quantization_idempotent_property(self, bits):
        rng = np.random.default_rng(3)
        values = rng.normal(size=200)
        scale = fit_scale_mse(values, bits=bits)
        once = quantize_symmetric(values, scale, bits)
        twice = quantize_symmetric(once, scale, bits)
        assert np.allclose(once, twice)


class TestLSQ:
    def test_initial_scale_positive(self, rng):
        lsq = LSQScale(rng.normal(size=(64, 8)))
        assert lsq.scale > 0

    def test_gradient_moves_scale_to_reduce_error(self, rng):
        values = rng.normal(size=(128, 8))
        lsq = LSQScale(values)
        lsq.scale *= 3.0  # deliberately too coarse
        for _ in range(200):
            err_grad = 2 * (lsq.quantize(values) - values)
            lsq.step(values, err_grad, lr=1e-3)
        coarse_err = np.mean((quantize_symmetric(values, 3.0 * LSQScale(values).scale) - values) ** 2)
        tuned_err = np.mean((lsq.quantize(values) - values) ** 2)
        assert tuned_err < coarse_err

    def test_scale_never_nonpositive(self, rng):
        values = rng.normal(size=(16, 4))
        lsq = LSQScale(values)
        lsq.step(values, np.full_like(values, 1e6), lr=10.0)
        assert lsq.scale > 0


class TestCodebook:
    def test_lookup(self, rng):
        codewords = rng.normal(size=(8, 4))
        codebook = Codebook(codewords)
        assignments = np.array([0, 3, 7])
        assert np.allclose(codebook.lookup(assignments), codewords[[0, 3, 7]])

    def test_quantize_in_place(self, rng):
        codebook = Codebook(rng.normal(size=(16, 8)))
        original = codebook.codewords.copy()
        codebook.quantize_(bits=8)
        assert codebook.bits == 8
        assert not np.allclose(codebook.codewords, original) or True  # quantized grid
        levels = np.unique(np.round(codebook.codewords / codebook.lsq.scale))
        assert levels.size <= 256

    def test_storage_bits(self):
        codebook = Codebook(np.zeros((512, 16)))
        assert codebook.storage_bits(8) == 512 * 16 * 8
        assert codebook.storage_bits() == 512 * 16 * 32  # unquantized default

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            Codebook(np.zeros(8))


class TestStorageAccounting:
    def test_assignment_and_codebook_bits(self):
        assert assignment_bits(100, 512) == 9 * 100
        assert assignment_bits(10, 1) == 10      # degenerate k=1 still 1 bit
        assert codebook_bits(512, 16, 8) == 512 * 16 * 8

    def test_mask_bits_lut_smaller_than_bitmask(self):
        # 4:16 -> C(16,4)=1820 -> 11 bits per 16 weights < 16 bits
        assert mask_bits_per_weight(4, 16) == pytest.approx(11 / 16)
        assert mask_bits(160, 4, 16) == 110

    def test_paper_compression_ratios(self):
        """The k/d/N:M pairs of Section 7.1 both land near ~22x."""
        cm = CompressionSpec(k=512, d=16, n_keep=4, m=16, codebook_bits=8)
        c = CompressionSpec(k=1024, d=8, n_keep=8, m=8, codebook_bits=8)
        num_subvectors = 11_000_000 // 16
        ratio_cm = compression_ratio(cm, num_subvectors)
        ratio_c = compression_ratio(c, num_subvectors * 2, store_mask=False)
        assert 20 < ratio_cm < 28
        assert 20 < ratio_c < 28

    def test_ratio_improves_without_mask(self):
        spec = CompressionSpec(k=256, d=8, n_keep=2, m=8)
        with_mask = compression_ratio(spec, 10_000)
        without = compression_ratio(spec, 10_000, store_mask=False)
        assert without > with_mask

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            CompressionSpec(k=16, d=8, n_keep=2, m=3)
        with pytest.raises(ValueError):
            CompressionSpec(k=16, d=8, n_keep=0, m=8)

    def test_sparsity_property(self):
        assert CompressionSpec(k=2, d=16, n_keep=4, m=16).sparsity == 0.75
        assert CompressionSpec(k=2, d=8, n_keep=1, m=2).sparsity == 0.5

    @given(k=st.sampled_from([64, 256, 1024]), d=st.sampled_from([8, 16]),
           n_keep=st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_compression_ratio_positive_and_monotone_in_k(self, k, d, n_keep):
        spec_small = CompressionSpec(k=k, d=d, n_keep=n_keep, m=8 if d == 8 else 16)
        spec_big = CompressionSpec(k=k * 2, d=d, n_keep=n_keep, m=8 if d == 8 else 16)
        n_sub = 50_000
        r_small = compression_ratio(spec_small, n_sub)
        r_big = compression_ratio(spec_big, n_sub)
        assert r_small > 0 and r_big > 0
        assert r_big <= r_small  # more codewords cost more bits


class TestMaskLUT:
    def test_roundtrip_single_block(self):
        lut = MaskLUT(2, 4)
        mask = np.array([True, False, True, False])
        assert np.array_equal(lut.decode_block(lut.encode_block(mask)), mask)

    def test_index_bits_match_formula(self):
        lut = MaskLUT(4, 16)
        assert lut.num_patterns == math.comb(16, 4)
        assert lut.index_bits == 11

    def test_encode_decode_full_mask(self, rng):
        lut = MaskLUT(2, 4)
        grouped = rng.normal(size=(30, 8))
        mask = nm_prune_mask(grouped, 2, 4)
        codes = lut.encode_mask(mask)
        assert codes.shape == (30, 2)
        assert np.array_equal(lut.decode_mask(codes, 8), mask)

    def test_wrong_popcount_raises(self):
        lut = MaskLUT(2, 4)
        with pytest.raises(ValueError):
            lut.encode_block(np.array([True, True, True, False]))

    def test_out_of_range_index_raises(self):
        lut = MaskLUT(1, 2)
        with pytest.raises(ValueError):
            lut.decode_block(5)

    @given(n_keep=st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_all_patterns_unique_property(self, n_keep):
        lut = MaskLUT(n_keep, 4)
        decoded = {tuple(lut.decode_block(i)) for i in range(lut.num_patterns)}
        assert len(decoded) == lut.num_patterns
