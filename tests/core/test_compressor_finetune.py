"""Tests for the whole-model MVQ compressor and codebook fine-tuning."""

import numpy as np
import pytest

from repro.core import (
    CodebookFinetuner,
    GroupingStrategy,
    LayerCompressionConfig,
    MVQCompressor,
)
from repro.core.compressor import CompressedModel
from repro.core.finetune import finetune_compressed_model
from repro.nn import CrossEntropyLoss, SGD, evaluate_accuracy
from repro.nn.models import mobilenet_v2_mini, resnet18_mini


SMALL_CFG = LayerCompressionConfig(k=32, d=8, n_keep=2, m=8, max_kmeans_iterations=25)


class TestMVQCompressor:
    def test_compress_returns_all_conv_layers(self):
        model = resnet18_mini(num_classes=5, seed=0)
        compressed = MVQCompressor(SMALL_CFG).compress(model)
        conv_names = [name for name, m in model.named_modules()
                      if m.__class__.__name__ == "Conv2d" and not getattr(m, "depthwise", False)]
        assert set(compressed.layers) == set(conv_names)

    def test_sparsity_matches_nm(self):
        model = resnet18_mini(num_classes=5, seed=0)
        compressed = MVQCompressor(SMALL_CFG).compress(model)
        assert np.isclose(compressed.sparsity(), 0.75, atol=0.01)

    def test_reconstruction_shapes_match(self):
        model = resnet18_mini(num_classes=5, seed=0)
        compressed = MVQCompressor(SMALL_CFG).compress(model)
        modules = dict(model.named_modules())
        for name, state in compressed.layers.items():
            assert state.reconstruct_weight().shape == modules[name].weight.shape

    def test_apply_to_model_overwrites_weights(self):
        model = resnet18_mini(num_classes=5, seed=0)
        original = model.state_dict()
        compressed = MVQCompressor(SMALL_CFG).compress(model)
        compressed.apply_to_model()
        changed = sum(
            not np.allclose(original[name + ".weight"], mod.weight.value)
            for name, mod in model.named_modules() if name in compressed.layers
        )
        assert changed == len(compressed.layers)

    def test_compression_ratio_in_expected_range(self):
        model = resnet18_mini(num_classes=5, seed=0)
        cfg = LayerCompressionConfig(k=64, d=8, n_keep=2, m=8)
        compressed = MVQCompressor(cfg).compress(model)
        ratio = compressed.compression_ratio()
        assert 5 < ratio < 32

    def test_crosslayer_shares_one_codebook(self):
        model = resnet18_mini(num_classes=5, seed=0)
        compressed = MVQCompressor(SMALL_CFG, crosslayer=True).compress(model)
        ids = {id(state.codebook) for state in compressed}
        assert len(ids) == 1

    def test_crosslayer_higher_ratio_than_layerwise(self):
        model = resnet18_mini(num_classes=5, seed=0)
        layerwise = MVQCompressor(SMALL_CFG).compress(model).compression_ratio()
        crosslayer = MVQCompressor(SMALL_CFG, crosslayer=True).compress(model).compression_ratio()
        assert crosslayer > layerwise  # one codebook amortised over all layers

    def test_skip_layers(self):
        model = resnet18_mini(num_classes=5, seed=0)
        all_layers = set(MVQCompressor(SMALL_CFG).compress(model).layers)
        skip = next(iter(all_layers))
        remaining = set(MVQCompressor(SMALL_CFG, skip_layers={skip}).compress(model).layers)
        assert remaining == all_layers - {skip}

    def test_per_layer_override(self):
        model = resnet18_mini(num_classes=5, seed=0)
        target = next(iter(MVQCompressor(SMALL_CFG).compress(model).layers))
        override = LayerCompressionConfig(k=8, d=8, n_keep=2, m=8)
        compressed = MVQCompressor(SMALL_CFG, per_layer_overrides={target: override}).compress(model)
        assert compressed.layers[target].codebook.k == 8

    def test_no_compressible_layers_raises(self):
        from repro.nn.module import Module
        from repro.nn.layers import Linear

        class TinyMLP(Module):
            def __init__(self):
                super().__init__()
                self.fc = Linear(7, 3)

            def forward(self, x):
                return self.fc.forward(x)

            def backward(self, g):
                return self.fc.backward(g)

        with pytest.raises(ValueError):
            MVQCompressor(SMALL_CFG).compress(TinyMLP())

    def test_ablation_cases_configuration(self):
        a = MVQCompressor.ablation_case("A", SMALL_CFG)
        b = MVQCompressor.ablation_case("B", SMALL_CFG)
        c = MVQCompressor.ablation_case("C", SMALL_CFG)
        d = MVQCompressor.ablation_case("D", SMALL_CFG)
        assert not a.config.prune and not a.config.store_mask
        assert b.config.prune and not b.config.store_mask
        assert c.config.prune and c.config.store_mask and not c.config.use_masked_kmeans
        assert d.config.use_masked_kmeans and d.config.store_mask
        with pytest.raises(ValueError):
            MVQCompressor.ablation_case("Z", SMALL_CFG)

    def test_case_without_mask_reconstructs_dense(self):
        model = resnet18_mini(num_classes=5, seed=0)
        compressed = MVQCompressor.ablation_case("A", SMALL_CFG).compress(model)
        for state in compressed:
            assert state.sparsity() == 0.0
            weight = state.reconstruct_weight()
            assert np.mean(weight == 0) < 0.2  # dense reconstruction

    def test_masked_kmeans_beats_common_on_mask_sse(self):
        """Table 3 shape: case D has lower masked SSE than case C."""
        model = resnet18_mini(num_classes=5, seed=0)
        cfg = LayerCompressionConfig(k=32, d=16, n_keep=4, m=16, max_kmeans_iterations=25)
        case_c = MVQCompressor.ablation_case("C", cfg).compress(model)
        case_d = MVQCompressor.ablation_case("D", cfg).compress(model)
        assert case_d.mask_sse() < case_c.mask_sse()

    def test_input_grouping_strategy(self):
        model = resnet18_mini(num_classes=5, seed=0, width=16)
        cfg = LayerCompressionConfig(k=32, d=8, n_keep=2, m=8,
                                     strategy=GroupingStrategy.INPUT)
        compressed = MVQCompressor(cfg).compress(model)
        assert len(compressed) > 0
        compressed.apply_to_model()  # reconstruction must be shape-consistent


class TestCodebookFinetuning:
    def test_finetuner_syncs_model_weights(self, trained_model):
        compressed = MVQCompressor(SMALL_CFG).compress(trained_model)
        finetuner = CodebookFinetuner(compressed, lr=1e-3)
        modules = dict(trained_model.named_modules())
        for name, state in compressed.layers.items():
            assert np.allclose(modules[name].weight.value, state.reconstruct_weight())
        assert len(finetuner.codebook_parameters()) == len(compressed.layers)

    def test_masked_gradients_ignore_pruned_positions(self, trained_model):
        compressed = MVQCompressor(SMALL_CFG).compress(trained_model)
        finetuner = CodebookFinetuner(compressed, lr=1e-3)
        # fabricate a weight gradient that is nonzero ONLY at pruned positions
        modules = dict(trained_model.named_modules())
        from repro.core.grouping import ungroup_weight
        for name, state in compressed.layers.items():
            grad_grouped = (~state.mask).astype(float)
            modules[name].weight.grad = ungroup_weight(
                grad_grouped, state.weight_shape, state.config.d, state.config.strategy)
        finetuner.accumulate_codebook_gradients()
        for param in finetuner.codebook_parameters():
            assert np.allclose(param.grad, 0.0)

    def test_finetuning_recovers_accuracy(self, classification_data, trained_model):
        """End-to-end Fig. 2 pipeline: compression hurts, fine-tuning recovers."""
        train, val = classification_data
        baseline = evaluate_accuracy(trained_model, val)

        compressed = MVQCompressor(LayerCompressionConfig(k=24, d=8, n_keep=2, m=8,
                                                          max_kmeans_iterations=25)
                                   ).compress(trained_model)
        compressed.apply_to_model()
        degraded = evaluate_accuracy(trained_model, val)

        optimizer = SGD(trained_model.parameters(), lr=0.02, momentum=0.9)
        finetune_compressed_model(compressed, train, CrossEntropyLoss(), optimizer,
                                  epochs=2, codebook_lr=5e-3)
        recovered = evaluate_accuracy(trained_model, val)

        assert degraded < baseline
        assert recovered > degraded
        assert recovered >= baseline - 0.15

    def test_crosslayer_finetuner_single_parameter(self, trained_model):
        compressed = MVQCompressor(SMALL_CFG, crosslayer=True).compress(trained_model)
        finetuner = CodebookFinetuner(compressed, lr=1e-3)
        assert len(finetuner.codebook_parameters()) == 1

    def test_compressed_weights_stay_sparse_after_step(self, classification_data, trained_model):
        train, _ = classification_data
        compressed = MVQCompressor(SMALL_CFG).compress(trained_model)
        optimizer = SGD(trained_model.parameters(), lr=0.01)
        finetune_compressed_model(compressed, train, CrossEntropyLoss(), optimizer, epochs=1)
        modules = dict(trained_model.named_modules())
        for name, state in compressed.layers.items():
            weight = modules[name].weight.value
            zero_fraction = np.mean(weight == 0)
            assert zero_fraction > 0.7  # N:M sparsity preserved through fine-tuning


class TestMobileNetCompression:
    def test_fifty_percent_sparsity_config(self):
        """Parameter-efficient models use 1:2 pruning (Section 6.2)."""
        model = mobilenet_v2_mini(num_classes=5, seed=0)
        cfg = LayerCompressionConfig(k=32, d=8, n_keep=1, m=2, max_kmeans_iterations=20)
        compressed = MVQCompressor(cfg).compress(model)
        assert np.isclose(compressed.sparsity(), 0.5, atol=0.01)
        assert len(compressed) > 0
