"""Tests for the global dtype/memory policy and the float32 compute paths."""

import numpy as np
import pytest

from repro.core import precision
from repro.core.kmeans import kmeans
from repro.core.masked_kmeans import masked_kmeans
from repro.core.pruning import nm_prune_mask


@pytest.fixture(autouse=True)
def _restore_policy():
    dtype = precision.compute_dtype()
    block = precision.distance_block_bytes()
    yield
    precision.set_compute_dtype(dtype)
    precision.set_distance_block_bytes(block)


class TestPolicy:
    def test_default_is_float64(self):
        assert precision.compute_dtype() == np.float64
        assert precision.accum_dtype() == np.float64

    def test_set_and_restore(self):
        previous = precision.set_compute_dtype("float32")
        assert previous == np.float64
        assert precision.compute_dtype() == np.float32

    def test_context_manager_restores_on_exit_and_error(self):
        with precision.precision("float32", block_bytes=1 << 16):
            assert precision.compute_dtype() == np.float32
            assert precision.distance_block_bytes() == 1 << 16
        assert precision.compute_dtype() == np.float64
        with pytest.raises(RuntimeError):
            with precision.precision("float32"):
                raise RuntimeError("boom")
        assert precision.compute_dtype() == np.float64

    def test_failed_context_entry_restores_applied_knobs(self):
        """A valid dtype followed by an invalid block budget must not leak
        the half-applied policy."""
        with pytest.raises(ValueError):
            with precision.precision("float32", block_bytes=0):
                pass  # pragma: no cover - never reached
        assert precision.compute_dtype() == np.float64

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            precision.set_compute_dtype("float16")
        with pytest.raises(ValueError):
            precision.set_compute_dtype("int32")
        with pytest.raises(ValueError):
            precision.set_distance_block_bytes(0)

    def test_block_rows(self):
        # (rows, 256) float64 blocks within 1 MiB -> 512 rows
        assert precision.block_rows(256, 8, 1 << 20) == 512
        assert precision.block_rows(10**9, 8, 1 << 20) == 1  # never zero


class TestFloat32Clustering:
    def test_kmeans_float32_dtype_and_quality(self, rng):
        data = rng.normal(size=(500, 8))
        ref = kmeans(data, 16, seed=0)
        with precision.precision("float32"):
            r32 = kmeans(data, 16, seed=0)
        assert r32.codewords.dtype == np.float32
        assert np.isclose(r32.sse, ref.sse, rtol=0.05)

    def test_masked_kmeans_float32_dtype_and_quality(self, rng):
        data = rng.normal(size=(500, 8))
        mask = nm_prune_mask(data, 2, 8)
        ref = masked_kmeans(data * mask, mask, 16, seed=0)
        with precision.precision("float32"):
            r32 = masked_kmeans(data * mask, mask, 16, seed=0)
        assert r32.codewords.dtype == np.float32
        assert np.isclose(r32.sse, ref.sse, rtol=0.05)

    def test_sse_accumulates_in_float64(self, rng):
        with precision.precision("float32"):
            result = masked_kmeans(rng.normal(size=(64, 8)),
                                   np.ones((64, 8), dtype=bool), 4, seed=0)
        assert isinstance(result.sse, float)
        assert np.isfinite(result.sse)

    def test_chunked_matches_unchunked_under_float32(self, rng):
        data = rng.normal(size=(300, 8))
        mask = nm_prune_mask(data, 2, 8)
        with precision.precision("float32"):
            a = masked_kmeans(data * mask, mask, 8, seed=0)
            b = masked_kmeans(data * mask, mask, 8, seed=0, block_bytes=2048)
        assert np.array_equal(a.assignments, b.assignments)
        assert np.array_equal(a.codewords, b.codewords)


class TestFloat32Network:
    def _train_steps(self, steps=3):
        from repro.nn import Conv2d, CrossEntropyLoss, Flatten, Linear, ReLU, SGD, Sequential

        rng = np.random.default_rng(0)
        model = Sequential(
            Conv2d(3, 8, 3, padding=1, rng=np.random.default_rng(1)),
            ReLU(),
            Flatten(),
            Linear(8 * 8 * 8, 5, rng=np.random.default_rng(2)),
        )
        loss_fn = CrossEntropyLoss()
        opt = SGD(model.parameters(), lr=0.05)
        x = rng.normal(size=(16, 3, 8, 8))
        y = rng.integers(0, 5, size=16)
        losses = []
        for _ in range(steps):
            opt.zero_grad()
            out = model(x)
            losses.append(loss_fn(out, y))
            model.backward(loss_fn.backward())
            opt.step()
        return model, out, losses

    def test_forward_backward_runs_in_float32(self):
        with precision.precision("float32"):
            model, out, losses = self._train_steps()
        assert out.dtype == np.float32
        for p in model.parameters():
            assert p.value.dtype == np.float32
            assert p.grad.dtype == np.float32
        assert all(np.isfinite(l) for l in losses)
        assert losses[-1] < losses[0]

    def test_float32_training_tracks_float64(self):
        _, _, ref = self._train_steps()
        with precision.precision("float32"):
            _, _, l32 = self._train_steps()
        assert np.allclose(ref, l32, rtol=1e-3, atol=1e-4)

    def test_batchnorm_statistics_stay_float64(self):
        from repro.nn import BatchNorm2d

        with precision.precision("float32"):
            bn = BatchNorm2d(4)
            bn.train()
            x = np.random.default_rng(0).normal(size=(8, 4, 6, 6)).astype(np.float32)
            out = bn.forward(x)
            bn.backward(np.ones_like(out))
        assert out.dtype == np.float32
        assert bn.running_mean.dtype == np.float64
        assert bn.running_var.dtype == np.float64


class TestFloat32Compression:
    def test_compressor_under_float32_policy(self, trained_model):
        from repro.core import LayerCompressionConfig, MVQCompressor

        cfg = LayerCompressionConfig(k=16, d=8, max_kmeans_iterations=15)
        ref = MVQCompressor(cfg).compress(trained_model)
        with precision.precision("float32"):
            c32 = MVQCompressor(cfg).compress(trained_model)
        assert set(ref.layers) == set(c32.layers)
        # float32 clustering reaches essentially the same quality
        assert c32.mask_sse() <= ref.mask_sse() * 1.1 + 1e-6
        recon = next(iter(c32)).reconstruct_weight()
        assert np.isfinite(recon).all()