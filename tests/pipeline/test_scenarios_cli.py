"""Scenario registry and the `python -m repro.pipeline` CLI."""

import json

import pytest

from repro.pipeline.cli import main
from repro.pipeline.config import PipelineConfig
from repro.pipeline.scenarios import (
    SCENARIOS,
    Scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
    run_scenario,
)


class TestRegistry:
    def test_built_in_scenarios_present(self):
        names = {s.name for s in list_scenarios()}
        assert "quickstart-resnet18" in names
        assert {f"table3-case-{c}-resnet18" for c in "abcd"} <= names

    def test_every_scenario_config_builds(self):
        for scenario in list_scenarios():
            config = scenario.pipeline_config()
            assert isinstance(config, PipelineConfig)

    def test_get_scenario_unknown(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("nope")

    def test_duplicate_registration_rejected(self):
        scenario = get_scenario("quickstart-resnet18")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(scenario)
        register_scenario(scenario, overwrite=True)  # explicit overwrite ok
        assert SCENARIOS["quickstart-resnet18"] is scenario

    def test_scenario_dict_round_trip(self):
        scenario = get_scenario("quickstart-resnet18")
        again = Scenario.from_dict(scenario.to_dict())
        assert again == scenario

    def test_with_overrides_replaces_fields_and_merges_pipeline(self):
        scenario = get_scenario("quickstart-resnet18")
        variant = scenario.with_overrides(
            name="quickstart-k64",
            pipeline={"base": {"k": 64}, "export_path": "/tmp/m.npz"})
        assert variant.name == "quickstart-k64"
        assert variant.model == scenario.model
        # named keys changed, the rest of the nested pipeline kept
        assert variant.pipeline["base"]["k"] == 64
        assert variant.pipeline["base"]["max_kmeans_iterations"] == \
            scenario.pipeline["base"]["max_kmeans_iterations"]
        assert variant.pipeline["export_path"] == "/tmp/m.npz"
        assert variant.pipeline["serve"] == scenario.pipeline["serve"]
        # the original is untouched
        assert "export_path" not in scenario.pipeline
        assert scenario.pipeline["base"]["k"] != 64

    def test_with_overrides_without_pipeline(self):
        scenario = get_scenario("quickstart-resnet18")
        variant = scenario.with_overrides(workload="vgg16",
                                          input_shape=[3, 8, 8])
        assert variant.workload == "vgg16"
        assert variant.input_shape == (3, 8, 8)
        assert variant.pipeline == scenario.pipeline


#: a scenario small enough for the test suite: one tiny model, 3 stages of
#: serving/accelerator evaluation, few k-means iterations
_TINY_SCENARIO = Scenario(
    name="test-tiny",
    description="test scenario",
    model="resnet18",
    model_kwargs={"num_classes": 4, "seed": 2},
    pipeline={
        "preset": "mvq",
        "base": {"k": 8, "max_kmeans_iterations": 4},
        "stages": ["group", "prune", "cluster", "quantize", "export",
                   "serve_eval", "accel_eval"],
        "serve": {"batch_size": 2, "num_samples": 4},
    },
    workload="resnet18",
)


class TestRunScenario:
    def test_end_to_end_through_serving_and_accelerator(self, tmp_path):
        scenario = _TINY_SCENARIO.with_overrides(
            pipeline={"export_path": str(tmp_path / "artifact.npz")})
        result = run_scenario(scenario, cache_dir=str(tmp_path / "cache"))

        export = result.artifacts["export"]
        assert (tmp_path / "artifact.npz").exists()
        assert export["compression_ratio"] > 1.0

        serve = result.artifacts["serve_report"]
        assert serve["outputs_match"]
        assert serve["throughput_sps"] > 0

        accel = result.artifacts["accel_report"]
        assert accel["workload"] == "resnet18"
        assert accel["efficiency_tops_w"] > 0
        assert accel["runtime_ms"] > 0
        assert accel["table9_row"]["compression_ratio"] == pytest.approx(
            export["compression_ratio"])


class TestCli:
    def test_list_scenarios(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "quickstart-resnet18" in out

    def test_list_stages(self, capsys):
        assert main(["list-stages"]) == 0
        out = capsys.readouterr().out
        for stage in ("group", "prune", "cluster", "quantize", "serve_eval",
                      "accel_eval"):
            assert stage in out

    def test_run_requires_exactly_one_source(self, capsys):
        assert main(["run"]) == 2
        assert main(["run", "cfg.json", "--scenario", "x"]) == 2

    def test_run_scenario_spec_file_with_cache_and_report(self, tmp_path, capsys):
        spec = _TINY_SCENARIO.with_overrides(
            pipeline={"export_path": str(tmp_path / "m.npz")}).to_dict()
        cfg_path = tmp_path / "scenario.json"
        cfg_path.write_text(json.dumps(spec))
        cache = tmp_path / "cache"
        report_path = tmp_path / "report.json"

        assert main(["run", str(cfg_path), "--cache-dir", str(cache),
                     "--output", str(report_path)]) == 0
        report = json.loads(report_path.read_text())
        assert report["serve_report"]["outputs_match"] is True
        assert report["accel_report"]["efficiency_tops_w"] > 0
        assert report["compression_ratio"] > 1.0

        # warm re-run from the on-disk cache: clustering skipped
        assert main(["run", str(cfg_path), "--cache-dir", str(cache),
                     "--output", str(report_path)]) == 0
        report = json.loads(report_path.read_text())
        cluster = [e for e in report["events"] if e["stage"] == "cluster"][0]
        assert cluster["status"] == "cached"

    def test_run_bare_pipeline_config_file(self, tmp_path, capsys):
        cfg_path = tmp_path / "cfg.json"
        cfg_path.write_text(json.dumps({
            "base": {"k": 8, "max_kmeans_iterations": 4},
            "stages": ["group", "prune", "cluster", "quantize"],
        }))
        assert main(["run", str(cfg_path)]) == 0
        out = capsys.readouterr().out
        assert "compression ratio" in out

    def test_run_stage_override(self, tmp_path, capsys):
        cfg_path = tmp_path / "cfg.json"
        cfg_path.write_text(json.dumps({"base": {"k": 8,
                                                 "max_kmeans_iterations": 4}}))
        assert main(["run", str(cfg_path), "--stages", "cluster,quantize"]) == 0
