"""Crash-safety of the on-disk artifact store.

Torn writes, truncated pickles, bit rot, dead writers' locks and concurrent
multi-process writers: a reader must never observe a bad artifact — bad
entries are detected via the manifest digest, quarantined, and recomputed.
"""

import hashlib
import json
import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.core.faults import FaultPlan, FaultRule
from repro.pipeline import artifacts as artifacts_mod
from repro.pipeline.artifacts import MISS, ArtifactStore, _KeyLock, stable_hash

KEY = stable_hash("crash-test-entry")
VALUE = {"codebook": np.arange(64, dtype=np.float64).reshape(8, 8),
         "assignments": np.arange(32, dtype=np.int64)}


def _assert_value(loaded):
    assert loaded is not MISS
    assert np.array_equal(loaded["codebook"], VALUE["codebook"])
    assert np.array_equal(loaded["assignments"], VALUE["assignments"])


class TestAtomicCommit:
    def test_cross_process_warm_read_is_bit_identical(self, tmp_path):
        ArtifactStore(tmp_path).put(KEY, VALUE)
        _assert_value(ArtifactStore(tmp_path).get(KEY))  # fresh memory tier

    def test_manifest_records_payload_digest(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(KEY, VALUE)
        manifest = json.loads((tmp_path / "manifest" / f"{KEY}.json").read_text())
        raw = (tmp_path / f"{KEY}.pkl").read_bytes()
        assert manifest["digest"] == hashlib.sha256(raw).hexdigest()
        assert manifest["key"] == KEY

    def test_leftover_tmp_files_are_never_read(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(KEY, VALUE)
        (tmp_path / f"{KEY}.999.888.tmp").write_bytes(b"torn write debris")
        _assert_value(ArtifactStore(tmp_path).get(KEY))
        assert len(ArtifactStore(tmp_path)) == 1  # debris is not an entry


class TestCorruptionDetection:
    def _written(self, tmp_path):
        ArtifactStore(tmp_path).put(KEY, VALUE)
        return tmp_path / f"{KEY}.pkl"

    def test_truncated_pickle_is_quarantined_and_recomputed(self, tmp_path):
        path = self._written(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])  # mid-write kill shape
        store = ArtifactStore(tmp_path)
        assert store.get(KEY) is MISS
        assert store.stats()["corrupted"] == 1
        assert list((tmp_path / "quarantine").glob(f"{KEY}.*.pkl"))
        assert not path.exists()
        store.put(KEY, VALUE)  # transparent recompute path
        _assert_value(ArtifactStore(tmp_path).get(KEY))

    def test_single_flipped_byte_is_detected(self, tmp_path):
        path = self._written(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 3] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert ArtifactStore(tmp_path).get(KEY) is MISS

    def test_unreadable_manifest_falls_back_to_unpickle_guard(self, tmp_path):
        self._written(tmp_path)
        (tmp_path / "manifest" / f"{KEY}.json").write_text("{not json")
        # payload itself is intact, so the read still succeeds
        _assert_value(ArtifactStore(tmp_path).get(KEY))

    def test_legacy_unmanifested_garbage_is_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path)
        (tmp_path / f"{KEY}.pkl").write_bytes(b"\x80\x05 not a pickle")
        assert store.get(KEY) is MISS
        assert store.stats()["corrupted"] == 1

    def test_scrub_reports_and_quarantines(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keys = [stable_hash("scrub", i) for i in range(3)]
        for key in keys:
            store.put(key, VALUE)
        bad = tmp_path / f"{keys[1]}.pkl"
        bad.write_bytes(bad.read_bytes()[:-7])
        (tmp_path / "legacy.pkl").write_bytes(b"old format, no manifest")
        report = ArtifactStore(tmp_path).scrub()
        assert report["checked"] == 4
        assert report["ok"] == 2
        assert report["quarantined"] == 1
        assert report["unmanifested"] == 1
        assert not bad.exists()


class TestFaultInjection:
    def test_injected_write_corruption_is_caught_on_read(self, tmp_path):
        plan = FaultPlan([FaultRule("artifacts.store.write", kind="corrupt",
                                    probability=1.0)], seed=3)
        with plan.active():
            ArtifactStore(tmp_path).put(KEY, VALUE)
        store = ArtifactStore(tmp_path)  # no plan: clean read path
        assert store.get(KEY) is MISS
        assert store.stats()["corrupted"] == 1
        store.put(KEY, VALUE)
        _assert_value(ArtifactStore(tmp_path).get(KEY))

    def test_injected_read_corruption_is_caught_by_digest(self, tmp_path):
        ArtifactStore(tmp_path).put(KEY, VALUE)
        plan = FaultPlan([FaultRule("artifacts.store.read", kind="corrupt",
                                    probability=1.0, max_injections=1)], seed=5)
        store = ArtifactStore(tmp_path)
        with plan.active():
            assert store.get(KEY) is MISS  # mangled in flight: rejected

    def test_injected_write_error_leaves_no_partial_entry(self, tmp_path):
        plan = FaultPlan([FaultRule("artifacts.store.write", probability=1.0,
                                    max_injections=1)], seed=1)
        store = ArtifactStore(tmp_path)
        with plan.active():
            with pytest.raises(Exception):
                store.put(KEY, VALUE)
        assert not (tmp_path / f"{KEY}.pkl").exists()
        assert not (tmp_path / f"{KEY}.lock").exists()
        fresh = ArtifactStore(tmp_path)
        assert fresh.get(KEY) is MISS
        fresh.put(KEY, VALUE)
        _assert_value(ArtifactStore(tmp_path).get(KEY))


class TestLocks:
    def test_lock_is_exclusive_and_released(self, tmp_path):
        lock_path = tmp_path / "k.lock"
        with _KeyLock(lock_path):
            assert lock_path.exists()
            with pytest.raises(TimeoutError):
                _KeyLock(lock_path, timeout_s=0.05).__enter__()
        assert not lock_path.exists()

    def test_stale_lock_is_taken_over(self, tmp_path):
        lock_path = tmp_path / "k.lock"
        lock_path.write_text("99999")  # dead writer's leftover
        stale = time.time() - artifacts_mod.STALE_LOCK_S - 5.0
        os.utime(lock_path, (stale, stale))
        with _KeyLock(lock_path, timeout_s=2.0):
            assert lock_path.read_text() == str(os.getpid())

    def test_put_survives_dead_writers_lock(self, tmp_path, monkeypatch):
        monkeypatch.setattr(artifacts_mod, "STALE_LOCK_S", 0.05)
        store = ArtifactStore(tmp_path)
        lock = tmp_path / f"{KEY}.lock"
        lock.write_text("99999")
        time.sleep(0.1)  # let it go stale
        store.put(KEY, VALUE)
        _assert_value(ArtifactStore(tmp_path).get(KEY))
        assert not lock.exists()


def _hammer(args):
    cache_dir, worker, rounds = args
    store = ArtifactStore(cache_dir)
    for i in range(rounds):
        key = stable_hash("contended", i % 4)
        value = {"round": i % 4,
                 "payload": np.full((64,), float(i % 4))}
        store.put(key, value)
        loaded = store.get(key)
        if loaded is MISS:
            return f"worker {worker}: observed MISS for a written key"
        if not np.array_equal(loaded["payload"],
                              np.full((64,), float(loaded["round"]))):
            return f"worker {worker}: observed torn artifact"
    return None


class TestMultiProcess:
    def test_concurrent_writers_never_expose_a_bad_artifact(self, tmp_path):
        # 4 processes hammer the same 4 keys; content-addressing makes the
        # writes idempotent, so every read must be complete and consistent
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(4) as pool:
            failures = [f for f in pool.map(
                _hammer, [(str(tmp_path), w, 25) for w in range(4)]) if f]
        assert failures == []
        report = ArtifactStore(tmp_path).scrub()
        assert report["checked"] == 4
        assert report["quarantined"] == 0
        assert report["ok"] == 4

    def test_killed_writer_never_leaves_an_observable_bad_entry(self, tmp_path):
        # kill a writer mid-hammer at an arbitrary instant; whatever state
        # it left behind, every committed entry still verifies and a fresh
        # run repairs the rest
        ctx = multiprocessing.get_context("fork")
        victim = ctx.Process(target=_hammer,
                             args=((str(tmp_path), 0, 100_000),))
        victim.start()
        time.sleep(0.25)
        victim.terminate()
        victim.join(10.0)
        report = ArtifactStore(tmp_path).scrub()
        assert report["quarantined"] == 0  # atomic rename: no torn entries
        store = ArtifactStore(tmp_path)
        for i in range(4):
            key = stable_hash("contended", i)
            loaded = store.get(key)
            if loaded is not MISS:  # committed before the kill: intact
                assert np.array_equal(loaded["payload"],
                                      np.full((64,), float(loaded["round"])))
            store.put(key, {"round": i, "payload": np.full((64,), float(i))})
        assert ArtifactStore(tmp_path).scrub()["ok"] == 4
