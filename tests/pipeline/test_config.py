"""PipelineConfig schema: layer-config (de)serialization, presets and
per-layer-pattern overrides."""

import json

import numpy as np
import pytest

from repro.core import LayerCompressionConfig, MVQCompressor
from repro.core.grouping import GroupingStrategy
from repro.core.serialization import load_compressed_model, save_compressed_model
from repro.nn import Conv2d, Sequential
from repro.pipeline.config import (
    CORE_STAGES,
    LayerOverride,
    PipelineConfig,
    PRESETS,
    layer_config_from_dict,
    layer_config_to_dict,
)


class TestLayerConfigSchema:
    def test_round_trip_preserves_all_fields(self):
        cfg = LayerCompressionConfig(
            k=17, d=4, n_keep=1, m=4, codebook_bits=6, weight_bits=16,
            strategy=GroupingStrategy.INPUT, prune=False,
            use_masked_kmeans=False, store_mask=False,
            max_kmeans_iterations=23, seed=7)
        assert layer_config_from_dict(layer_config_to_dict(cfg)) == cfg

    def test_dict_is_json_compatible(self):
        data = layer_config_to_dict(LayerCompressionConfig())
        assert layer_config_from_dict(json.loads(json.dumps(data))) == \
            LayerCompressionConfig()

    def test_pre_schema_manifest_still_loads(self):
        """Archives written before max_kmeans_iterations/seed joined the
        manifest deserialize with the dataclass defaults filled in."""
        legacy = {
            "k": 64, "d": 8, "n_keep": 2, "m": 8, "codebook_bits": 8,
            "weight_bits": 32, "strategy": "output", "prune": True,
            "use_masked_kmeans": True, "store_mask": True,
        }
        cfg = layer_config_from_dict(legacy)
        assert cfg.k == 64
        assert cfg.max_kmeans_iterations == LayerCompressionConfig().max_kmeans_iterations
        assert cfg.seed == LayerCompressionConfig().seed

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            layer_config_from_dict({"k": 8, "codeboook_bits": 8})

    def test_partial_dict_merges_onto_base(self):
        base = LayerCompressionConfig(k=32, n_keep=4)
        merged = layer_config_from_dict({"k": 8}, base=base)
        assert merged.k == 8 and merged.n_keep == 4

    def test_npz_round_trip_uses_shared_schema(self, tmp_path):
        model = Sequential(Conv2d(8, 16, 3, rng=np.random.default_rng(0)))
        cfg = LayerCompressionConfig(k=8, max_kmeans_iterations=4,
                                     seed=3, codebook_bits=6)
        compressed = MVQCompressor(cfg).compress(model)
        path = tmp_path / "model.npz"
        save_compressed_model(compressed, path)
        reloaded = load_compressed_model(model, path)
        state = next(iter(reloaded))
        # the full schema — including the runtime fields the old hand-rolled
        # dicts dropped — survives the archive round trip
        assert state.config == cfg


class TestPresets:
    #: (preset, prune, use_masked_kmeans, store_mask) — Table 3's cases
    CASES = [
        ("table3_case_a", False, False, False),
        ("table3_case_b", True, False, False),
        ("table3_case_c", True, False, True),
        ("table3_case_d", True, True, True),
        ("mvq", True, True, True),
    ]

    @pytest.mark.parametrize("preset,prune,masked,store", CASES)
    def test_table3_presets_match_ablation_cases(self, preset, prune, masked, store):
        config = PipelineConfig.from_preset(preset)
        assert config.base.prune is prune
        assert config.base.use_masked_kmeans is masked
        assert config.base.store_mask is store

    def test_preset_merges_under_user_fields(self):
        config = PipelineConfig.from_dict(
            {"preset": "table3_case_b", "base": {"k": 99}})
        assert config.base.k == 99
        assert config.base.use_masked_kmeans is False

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="preset"):
            PipelineConfig.from_dict({"preset": "nope"})

    def test_all_presets_build(self):
        for name in PRESETS:
            PipelineConfig.from_preset(name)


class TestPipelineConfigSchema:
    def test_json_round_trip(self):
        config = PipelineConfig.from_dict({
            "base": {"k": 12},
            "overrides": [{"pattern": "stem.*", "fields": {"k": 48}}],
            "crosslayer": True,
            "workers": 2,
            "stages": ["group", "prune", "cluster"],
            "serve": {"batch_size": 4},
        })
        again = PipelineConfig.from_json(config.to_json())
        assert again == config
        assert again.stages == ("group", "prune", "cluster")

    def test_default_stages_are_the_canonical_composition(self):
        assert PipelineConfig().stages == CORE_STAGES

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(ValueError, match="unknown PipelineConfig"):
            PipelineConfig.from_dict({"bsae": {}})

    def test_override_with_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fields"):
            LayerOverride("conv*", {"kk": 3})


class TestLayerOverrides:
    CONFIG = PipelineConfig.from_dict({
        "base": {"k": 16},
        "overrides": [
            {"pattern": "stem.*", "fields": {"k": 64}},
            {"pattern": "*.conv2", "fields": {"n_keep": 4}},
            {"pattern": "stem.special", "fields": {"k": 8}},
        ],
    })

    def test_no_match_returns_base(self):
        assert self.CONFIG.resolve_layer_config("stages.0.conv1") == self.CONFIG.base

    def test_single_pattern_applies(self):
        cfg = self.CONFIG.resolve_layer_config("stem.layers.0")
        assert cfg.k == 64 and cfg.n_keep == self.CONFIG.base.n_keep

    def test_later_patterns_win(self):
        assert self.CONFIG.resolve_layer_config("stem.special").k == 8

    def test_multiple_patterns_stack(self):
        cfg = self.CONFIG.resolve_layer_config("stem.conv2")
        assert cfg.k == 64 and cfg.n_keep == 4

    def test_resolved_overrides_only_lists_divergent_layers(self):
        names = ["stages.0.conv1", "stem.layers.0", "a.conv2"]
        resolved = self.CONFIG.resolved_overrides(names)
        assert set(resolved) == {"stem.layers.0", "a.conv2"}

    def test_compressor_for_resolves_patterns_to_exact_names(self):
        model = Sequential(Conv2d(8, 16, 3, rng=np.random.default_rng(0)))
        config = PipelineConfig.from_dict({
            "base": {"k": 16},
            "overrides": [{"pattern": "layers.0", "fields": {"k": 4}}],
        })
        compressor = config.compressor_for(model)
        assert compressor.layer_config("layers.0").k == 4
