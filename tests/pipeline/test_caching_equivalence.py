"""Pipeline runner: bit-exact equivalence with the imperative API, artifact
caching granularity and out-of-order stage composition."""

import numpy as np
import pytest

from repro.core import LayerCompressionConfig, MVQCompressor
from repro.nn import Conv2d, Sequential
from repro.pipeline.artifacts import ArtifactStore, stable_hash
from repro.pipeline.config import PipelineConfig
from repro.pipeline.runner import Pipeline


def small_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2d(8, 16, 3, padding=1, rng=rng),
        Conv2d(16, 16, 3, padding=1, rng=rng),
        Conv2d(16, 24, 3, padding=1, rng=rng),
    )


BASE = {"k": 10, "max_kmeans_iterations": 6}


def config_dict(**extra):
    data = {"base": dict(BASE)}
    data.update(extra)
    return data


def assert_identical(c1, c2):
    assert sorted(c1.layers) == sorted(c2.layers)
    for name in c1.layers:
        a, b = c1.layers[name], c2.layers[name]
        assert np.array_equal(a.assignments, b.assignments), name
        assert np.array_equal(a.codebook.codewords, b.codebook.codewords), name
        assert np.array_equal(a.mask, b.mask), name
    assert c1.compression_ratio() == c2.compression_ratio()


class TestStableHash:
    def test_type_tags_prevent_collisions(self):
        assert stable_hash(1) != stable_hash("1")
        assert stable_hash(True) != stable_hash(1)
        assert stable_hash([1, 2]) != stable_hash([[1], [2]])

    def test_array_dtype_and_shape_matter(self):
        a = np.zeros((2, 3))
        assert stable_hash(a) != stable_hash(a.astype(np.float32))
        assert stable_hash(a) != stable_hash(a.reshape(3, 2))
        assert stable_hash(a) == stable_hash(a.copy())


class TestArtifactStore:
    def test_memory_round_trip(self):
        store = ArtifactStore()
        store.put("k", {"x": 1})
        assert store.get("k") == {"x": 1}
        assert store.hits == 1 and store.misses == 0

    def test_disk_persistence_across_instances(self, tmp_path):
        ArtifactStore(tmp_path).put("k", np.arange(4))
        fresh = ArtifactStore(tmp_path)
        np.testing.assert_array_equal(fresh.get("k"), np.arange(4))

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        (tmp_path / "bad.pkl").write_bytes(b"not a pickle")
        from repro.pipeline.artifacts import MISS
        assert store.get("bad") is MISS


class TestBitExactEquivalence:
    def test_json_config_reproduces_imperative_compress(self):
        cfg = LayerCompressionConfig(**BASE)
        imperative = MVQCompressor(cfg).compress(small_model())

        config = PipelineConfig.from_json(
            PipelineConfig.from_dict(config_dict()).to_json())
        declarative = Pipeline(config).run(small_model()).compressed
        assert_identical(imperative, declarative)

    def test_crosslayer_equivalence(self):
        cfg = LayerCompressionConfig(**BASE)
        imperative = MVQCompressor(cfg, crosslayer=True).compress(small_model())
        config = PipelineConfig.from_dict(config_dict(crosslayer=True))
        declarative = Pipeline(config).run(small_model()).compressed
        assert_identical(imperative, declarative)
        # one shared codebook after the pipeline run as well
        ids = {id(s.codebook) for s in declarative}
        assert len(ids) == 1

    def test_per_layer_override_equivalence(self):
        override_cfg = {"pattern": "layers.0", "fields": {"k": 6}}
        config = PipelineConfig.from_dict(config_dict(overrides=[override_cfg]))
        declarative = Pipeline(config).run(small_model()).compressed

        cfg = LayerCompressionConfig(**BASE)
        imperative = MVQCompressor(
            cfg, per_layer_overrides={
                "layers.0": LayerCompressionConfig(k=6, max_kmeans_iterations=6)}
        ).compress(small_model())
        assert_identical(imperative, declarative)


class TestClusterCaching:
    def test_warm_rerun_skips_clustering_bit_identically(self):
        store = ArtifactStore()
        config = PipelineConfig.from_dict(config_dict())
        cold = Pipeline(config, store=store).run(small_model())
        warm = Pipeline(config, store=store).run(small_model())

        assert cold.event_for("cluster")["status"] == "run"
        event = warm.event_for("cluster")
        assert event["status"] == "cached"
        assert event["layers_clustered"] == []
        assert_identical(cold.compressed, warm.compressed)

    def test_quantize_only_change_keeps_cluster_cache_warm(self):
        """codebook_bits is read by the quantize stage only: changing it must
        not invalidate the cached clustering."""
        store = ArtifactStore()
        Pipeline(PipelineConfig.from_dict(config_dict()), store=store).run(small_model())
        changed = PipelineConfig.from_dict(
            {"base": dict(BASE, codebook_bits=6)})
        rerun = Pipeline(changed, store=store).run(small_model())
        assert rerun.event_for("cluster")["status"] == "cached"
        # ... and the new bits were actually applied downstream
        assert next(iter(rerun.compressed)).codebook.bits == 6

    def test_cluster_field_change_invalidates_all_layers(self):
        store = ArtifactStore()
        Pipeline(PipelineConfig.from_dict(config_dict()), store=store).run(small_model())
        changed = PipelineConfig.from_dict({"base": dict(BASE, k=12)})
        rerun = Pipeline(changed, store=store).run(small_model())
        event = rerun.event_for("cluster")
        assert event["status"] == "run"
        assert event["layers_cached"] == []

    def test_per_layer_change_invalidates_exactly_that_layer(self):
        store = ArtifactStore()
        Pipeline(PipelineConfig.from_dict(config_dict()), store=store).run(small_model())
        changed = PipelineConfig.from_dict(config_dict(
            overrides=[{"pattern": "layers.1", "fields": {"k": 7}}]))
        rerun = Pipeline(changed, store=store).run(small_model())
        event = rerun.event_for("cluster")
        assert event["layers_clustered"] == ["layers.1"]
        assert sorted(event["layers_cached"]) == ["layers.0", "layers.2"]

    def test_weight_change_invalidates_that_layer(self):
        store = ArtifactStore()
        config = PipelineConfig.from_dict(config_dict())
        Pipeline(config, store=store).run(small_model())
        model = small_model()
        model.layers[2].weight.copy_(model.layers[2].weight.value * 1.5)
        rerun = Pipeline(config, store=store).run(model)
        event = rerun.event_for("cluster")
        assert event["layers_clustered"] == ["layers.2"]

    def test_disk_cache_survives_process_style_reload(self, tmp_path):
        config = PipelineConfig.from_dict(config_dict(cache_dir=str(tmp_path)))
        cold = Pipeline(config).run(small_model())
        warm = Pipeline(config).run(small_model())  # fresh store, same dir
        assert warm.event_for("cluster")["status"] == "cached"
        assert_identical(cold.compressed, warm.compressed)

    def test_crosslayer_caching(self):
        store = ArtifactStore()
        config = PipelineConfig.from_dict(config_dict(crosslayer=True))
        cold = Pipeline(config, store=store).run(small_model())
        warm = Pipeline(config, store=store).run(small_model())
        assert warm.event_for("cluster")["status"] == "cached"
        assert_identical(cold.compressed, warm.compressed)


class TestOutOfOrderComposition:
    def test_apply_stage_alone_pulls_prerequisites_without_recompute(self):
        """`apply` composed on its own reuses the warm cluster cache — the
        satellite fix: CompressedModel.apply_to_model() is reachable as a
        stage with no hidden re-clustering."""
        store = ArtifactStore()
        config = PipelineConfig.from_dict(config_dict())
        Pipeline(config, store=store).run(small_model())

        model = small_model()
        result = Pipeline(config, store=store).run(model, stages=["apply"])
        assert result.event_for("cluster")["status"] == "cached"
        assert result.event_for("apply")["status"] == "run"
        # the reconstructed weights actually landed in the model
        state = result.compressed.layers["layers.0"]
        np.testing.assert_array_equal(model.layers[0].weight.value,
                                      state.reconstruct_weight())

    def test_serve_eval_alone_runs_without_reclustering(self):
        store = ArtifactStore()
        config = PipelineConfig.from_dict(config_dict(
            serve={"batch_size": 2, "num_samples": 4, "input_shape": [8, 5, 5]}))
        Pipeline(config, store=store).run(small_model())

        result = Pipeline(config, store=store).run(small_model(),
                                                   stages=["serve_eval"])
        assert result.event_for("cluster")["status"] == "cached"
        report = result.artifacts["serve_report"]
        assert report["outputs_match"]

    def test_duplicate_stage_names_run_once(self):
        config = PipelineConfig.from_dict(config_dict())
        result = Pipeline(config).run(
            small_model(), stages=["cluster", "cluster", "quantize"])
        assert result.stages_run.count("cluster") == 1

    def test_unknown_stage_fails_before_any_work(self):
        config = PipelineConfig.from_dict(config_dict())
        with pytest.raises(KeyError, match="unknown stage"):
            Pipeline(config).run(small_model(), stages=["cluster", "nope"])

    def test_context_continuation_reuses_artifacts(self):
        config = PipelineConfig.from_dict(config_dict())
        pipeline = Pipeline(config)
        model = small_model()
        first = pipeline.run(model)
        second = pipeline.run(model, stages=["apply"], context=first.context)
        # same context: compression artifacts reused, only `apply` added
        assert second.compressed is first.compressed
        assert second.stages_run == first.stages_run + ("apply",)

    def test_context_with_different_model_rejected(self):
        config = PipelineConfig.from_dict(config_dict())
        pipeline = Pipeline(config)
        result = pipeline.run(small_model())
        with pytest.raises(ValueError, match="different model"):
            pipeline.run(small_model(), stages=["apply"], context=result.context)
