"""Spec-driven scenarios: one JSON workload drives pipeline + accelerator."""

from __future__ import annotations

import json

import pytest

from repro.pipeline.cli import _scenario_from_file
from repro.pipeline.scenarios import Scenario, get_scenario, run_scenario
from repro.workloads import WorkloadSpec, shape_factory

_SMALL_SPEC = {
    "name": "cli_spec_net",
    "input_shape": [3, 16, 16],
    "layers": [
        {"name": "stem", "op": "conv",
         "dims": {"in_channels": 3, "out_channels": 16, "kernel_size": 3,
                  "padding": 1},
         "bias": False, "norm": "batch", "act": "relu", "save_as": "skip"},
        {"name": "body", "op": "conv",
         "dims": {"in_channels": 16, "out_channels": 16, "kernel_size": 3,
                  "padding": 1},
         "bias": False, "norm": "batch"},
        {"name": "add", "op": "residual", "dims": {"from": "skip"},
         "act": "relu"},
        {"name": "pool", "op": "pool", "dims": {"kind": "global_avg"}},
        {"name": "head", "op": "linear",
         "dims": {"in_features": 16, "out_features": 4}},
    ],
    "meta": {"pipeline": {"stages": ["group", "prune", "cluster", "quantize",
                                     "export", "serve_eval", "accel_eval"]}},
}


class TestScenarioRegistry:
    @pytest.mark.parametrize("name", ["transformer-block", "detection-simple",
                                      "segmentation-deeplab",
                                      "stress-gemm-tower"])
    def test_new_scenario_families_are_registered(self, name):
        scenario = get_scenario(name)
        assert scenario.workload is not None
        # every new scenario's workload resolves to a spec-derived table
        assert shape_factory(scenario.workload)()

    def test_workload_spec_round_trips_through_to_dict(self):
        scenario = Scenario(name="t", description="", model="cli_spec_net",
                            workload_spec=_SMALL_SPEC, pipeline={"preset": "mvq"})
        data = scenario.to_dict()
        assert data["workload_spec"]["name"] == "cli_spec_net"
        again = Scenario.from_dict(data)
        assert again.resolve_workload_spec() == WorkloadSpec.from_dict(_SMALL_SPEC)
        # scenarios without a spec keep their legacy dict shape
        assert "workload_spec" not in get_scenario("quickstart-resnet18").to_dict()

    def test_effective_input_shape_comes_from_the_spec(self):
        scenario = Scenario(name="t", description="", model="cli_spec_net",
                            workload_spec=_SMALL_SPEC, pipeline={})
        assert scenario.effective_input_shape() == (3, 16, 16)
        assert get_scenario("transformer-block").effective_input_shape() == (64, 32)


class TestTransformerBlockEndToEnd:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario("transformer-block")

    def test_all_stages_ran(self, result):
        ran = {e["stage"] for e in result.events if e["status"] == "run"}
        assert {"group", "prune", "cluster", "quantize", "export",
                "serve_eval", "accel_eval"} <= ran

    def test_attention_projections_compressed(self, result):
        layers = set(result.compressed.layers)
        assert {name for name in layers if name.endswith((".q", ".k", ".v",
                                                          ".out"))}

    def test_served_on_the_lut_engine(self, result):
        serve = result.artifacts["serve_report"]
        assert serve["outputs_match"]
        assert set(serve["engine_modes"]) == {"lut"}

    def test_accelerator_prices_the_lowered_gemms(self, result):
        accel = result.artifacts["accel_report"]
        assert accel["workload"] == "transformer_block"
        assert accel["efficiency_tops_w"] > 0


class TestWorkloadFileDrivesThePipeline:
    def test_json_file_runs_compress_serve_accel(self, tmp_path):
        path = tmp_path / "net.json"
        path.write_text(json.dumps(_SMALL_SPEC))
        scenario = _scenario_from_file(str(path), model="unused")
        assert scenario.name == "cli_spec_net"
        result = run_scenario(scenario)
        assert result.compressed.compression_ratio() > 1
        assert result.artifacts["serve_report"]["outputs_match"]
        accel = result.artifacts["accel_report"]
        assert accel["workload"] == "cli_spec_net"
        # the spec table and the built model went through the same run
        spec = WorkloadSpec.from_dict(_SMALL_SPEC)
        assert shape_factory("cli_spec_net")() == spec.layer_shapes()

    def test_meta_pipeline_overrides_apply(self, tmp_path):
        data = dict(_SMALL_SPEC,
                    meta={"pipeline": {"stages": ["group", "prune"]}})
        path = tmp_path / "net.json"
        path.write_text(json.dumps(data))
        scenario = _scenario_from_file(str(path), model="unused")
        assert scenario.pipeline["stages"] == ["group", "prune"]
