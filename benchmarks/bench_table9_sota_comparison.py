"""Table 9: comparison with prior sparse CNN accelerators (process-normalised)."""

from benchmarks._common import fmt, print_table
from repro.accelerator.comparison import comparison_table


def test_table9_sota_comparison(benchmark):
    rows_raw = benchmark(comparison_table)
    rows = [(r["name"], r["process_nm"], r["macs"], r["sparsity"], r["quantization"],
             r["compression_ratio"] or "-", r["workload"], r["dataflow"],
             fmt(float(r["peak_tops"]), 2), fmt(float(r["area_mm2"]), 2),
             fmt(float(r["efficiency_tops_w"]), 2), fmt(float(r["normalized_efficiency"]), 2))
            for r in rows_raw]
    print_table("Table 9: comparison with other works (efficiency normalised to 40nm)",
                ("name", "nm", "MACs", "sparsity", "quant", "CR", "workload",
                 "dataflow", "peak TOPS", "area mm2", "TOPS/W", "N-TOPS/W"), rows)
    mvq64 = next(r for r in rows_raw if r["name"] == "MVQ-64")
    best_prior = max(r["normalized_efficiency"] for r in rows_raw
                     if not str(r["name"]).startswith("MVQ"))
    ratio = mvq64["normalized_efficiency"] / best_prior
    print(f"MVQ-64 vs best prior normalised efficiency: {ratio:.2f}x (paper: 1.73x vs S2TA)")
    assert ratio > 1.4
