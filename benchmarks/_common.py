"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
rows/series the paper reports (run pytest with ``-s`` to see them).  Trained
mini models are cached per process so that the many algorithm-side benches do
not retrain the same network.
"""

from __future__ import annotations

import zlib
from functools import lru_cache
from typing import Callable, Dict, Tuple

import numpy as np

from repro.nn import CrossEntropyLoss, SGD, Trainer, evaluate_accuracy
from repro.nn.data import SyntheticClassification, train_val_split
from repro.nn.models import MODEL_ZOO

NUM_CLASSES = 5
IMAGE_SIZE = 16

#: the shared model zoo (kept under the harness's historical name)
MODEL_FACTORIES: Dict[str, Callable] = dict(MODEL_ZOO)


@lru_cache(maxsize=1)
def classification_splits():
    dataset = SyntheticClassification(360, IMAGE_SIZE, NUM_CLASSES, seed=0)
    return train_val_split(dataset, val_fraction=0.25)


def reseed_splits(seed: int = 0):
    """Reset the cached splits' shuffle RNGs to a fixed stream.

    The splits above are process-cached and their datasets carry *stateful*
    shuffle RNGs, so any helper that trains on them would otherwise see a
    batch order that depends on how many epochs earlier benchmarks already
    consumed — accuracy asserts (bench_table5's most notoriously) then
    flake with test selection/ordering.  Every training helper below
    reseeds first, which makes each trained/fine-tuned model a pure
    function of its arguments again.  Returns the (train, val) splits.
    """
    train, val = classification_splits()
    train.rng = np.random.default_rng(seed + 1)
    val.rng = np.random.default_rng(seed + 2)
    return train, val


#: Per-model training rates: the plain (batch-norm-free) stacks need a gentler
#: learning rate than the residual networks to train stably.
MODEL_LR: Dict[str, float] = {"alexnet": 0.01, "vgg16": 0.03}
MODEL_EPOCHS: Dict[str, int] = {"alexnet": 10, "vgg16": 8}


def resolve_training_args(name: str, epochs: int = 0, lr: float = 0.0) -> Tuple[int, float]:
    """Fill in the per-model training defaults for falsy ``epochs``/``lr``."""
    return epochs or MODEL_EPOCHS.get(name, 6), lr or MODEL_LR.get(name, 0.05)


@lru_cache(maxsize=None)
def _train_model_cached(name: str, epochs: int, lr: float) -> Tuple[object, float]:
    train, val = reseed_splits(seed=zlib.crc32(f"{name}:{epochs}".encode()) % 10_000)
    model = MODEL_FACTORIES[name](num_classes=NUM_CLASSES, seed=1)
    trainer = Trainer(model, CrossEntropyLoss(),
                      SGD(model.parameters(), lr=lr, momentum=0.9), batch_size=32)
    trainer.fit(train, epochs=epochs, val_set=val)
    return model, evaluate_accuracy(model, val)


def trained_model(name: str, epochs: int = 0, lr: float = 0.0) -> Tuple[object, float]:
    """Train (and cache) one mini model; returns (model, baseline accuracy).

    Arguments are normalised *before* the cache lookup so that passing the
    defaults explicitly (e.g. ``trained_model("alexnet", epochs=10)``) hits
    the same cache entry as ``trained_model("alexnet")`` instead of
    retraining the model.
    """
    epochs, lr = resolve_training_args(name, epochs, lr)
    return _train_model_cached(name, epochs, lr)


def copy_of(model_name: str):
    """A fresh, mutable copy of a cached trained model plus its baseline accuracy."""
    model, baseline = trained_model(model_name)
    fresh = MODEL_FACTORIES[model_name](num_classes=NUM_CLASSES, seed=1)
    fresh.load_state_dict(model.state_dict())
    return fresh, baseline


def finetune(model, compressed, epochs: int = 2, lr: float = 0.02, codebook_lr: float = 3e-3):
    """Short codebook fine-tuning pass; returns final validation accuracy."""
    from repro.core import CodebookFinetuner

    train, val = reseed_splits(seed=7)
    finetuner = CodebookFinetuner(compressed, lr=codebook_lr)
    trainer = Trainer(model, CrossEntropyLoss(),
                      SGD(model.parameters(), lr=lr, momentum=0.9),
                      batch_size=32, hook=finetuner.step)
    trainer.fit(train, epochs=epochs)
    return evaluate_accuracy(model, val)


def validation_accuracy(model) -> float:
    _, val = classification_splits()
    return evaluate_accuracy(model, val)


def print_table(title: str, header, rows) -> None:
    """Print a paper-style table (visible with ``pytest -s``)."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) for i, h in enumerate(header)]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def fmt(value, digits: int = 2) -> str:
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)
