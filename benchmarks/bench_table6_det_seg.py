"""Table 6: object detection and semantic segmentation under MVQ compression.

The paper compresses ResNet-50 Mask-RCNN on COCO and MobileNet-V2 DeepLab-V3
on Pascal VOC.  Here the synthetic detection/segmentation tasks and the
simplified detector / DeepLab-lite models play those roles: the quantities
reported are the task metric before compression, after MVQ (with masks and
ASP-style frozen pruning), and after 2-bit uniform quantization (PvQ), which
the paper shows collapsing.
"""

from benchmarks._common import fmt, print_table
from repro.baselines import PvQQuantizer
from repro.core import CodebookFinetuner, LayerCompressionConfig, MVQCompressor
from repro.nn.data import SyntheticDetection, SyntheticSegmentation
from repro.nn.models import deeplab_lite_mini, simple_detector_mini
from repro.nn.models.deeplab import segmentation_miou, train_segmenter
from repro.nn.models.detection import detection_ap, train_detector


def detection_experiment():
    dataset = SyntheticDetection(160, 16, 3, seed=0)
    detector = simple_detector_mini(num_classes=3, seed=0)
    train_detector(detector, dataset, epochs=6, batch_size=32)
    baseline_ap = detection_ap(detector, dataset, iou_threshold=0.25)

    cfg = LayerCompressionConfig(k=32, d=8, n_keep=2, m=8, max_kmeans_iterations=25)
    compressed = MVQCompressor(cfg).compress(detector)
    compressed.apply_to_model()
    # codebook fine-tuning on the detection loss (masked gradients, Eq. 6)
    finetuner = CodebookFinetuner(compressed, lr=3e-3)
    train_detector(detector, dataset, epochs=3, batch_size=32, hook=finetuner.step)
    finetuned_ap = detection_ap(detector, dataset, iou_threshold=0.25)
    return {
        "baseline": baseline_ap,
        "mvq": finetuned_ap,
        "ratio": compressed.compression_ratio(),
        "sparsity": compressed.sparsity(),
    }


def segmentation_experiment():
    dataset = SyntheticSegmentation(80, 16, 3, seed=0)
    model = deeplab_lite_mini(num_classes=3, seed=0)
    train_segmenter(model, dataset, epochs=4, batch_size=16)
    baseline_miou = segmentation_miou(model, dataset)
    dense_state = model.state_dict()

    cfg = LayerCompressionConfig(k=32, d=8, n_keep=1, m=2, max_kmeans_iterations=25)
    compressed = MVQCompressor(cfg).compress(model)
    compressed.apply_to_model()
    finetuner = CodebookFinetuner(compressed, lr=3e-3)
    train_segmenter(model, dataset, epochs=3, batch_size=16, hook=finetuner.step)
    mvq_miou = segmentation_miou(model, dataset)

    pvq_model = deeplab_lite_mini(num_classes=3, seed=0)
    pvq_model.load_state_dict(dense_state)
    PvQQuantizer(bits=2).apply(pvq_model)
    pvq_miou = segmentation_miou(pvq_model, dataset)
    return {
        "baseline": baseline_miou,
        "mvq": mvq_miou,
        "pvq": pvq_miou,
        "ratio": compressed.compression_ratio(),
        "sparsity": compressed.sparsity(),
    }


def test_table6_detection(benchmark):
    det = benchmark.pedantic(detection_experiment, rounds=1, iterations=1)
    rows = [
        ("detector baseline", "-", "0%", fmt(det["baseline"], 3)),
        ("MVQ (ours)", fmt(det["ratio"], 1) + "x", f"{det['sparsity']:.0%}", fmt(det["mvq"], 3)),
    ]
    print_table("Table 6 (detection surrogate): AP under compression",
                ("method", "CR", "sparsity", "AP@0.25"), rows)
    assert det["mvq"] > det["baseline"] - 0.2
    assert det["ratio"] > 8


def test_table6_segmentation(benchmark):
    seg = benchmark.pedantic(segmentation_experiment, rounds=1, iterations=1)
    rows = [
        ("segmenter baseline", "-", "0%", fmt(seg["baseline"], 3)),
        ("MVQ (ours)", fmt(seg["ratio"], 1) + "x", f"{seg['sparsity']:.0%}", fmt(seg["mvq"], 3)),
        ("PvQ 2-bit uniform", "16x", "0%", fmt(seg["pvq"], 3)),
    ]
    print_table("Table 6 (segmentation surrogate): mIoU under compression",
                ("method", "CR", "sparsity", "mIoU"), rows)
    # paper shape: MVQ keeps most of the mIoU while 2-bit uniform quantization crashes
    assert seg["mvq"] > seg["pvq"]
    assert seg["mvq"] > seg["baseline"] - 0.25
