"""Fig. 14: data-access cost ratio of different memory levels for five CNNs."""

from benchmarks._common import fmt, print_table
from repro.accelerator.config import HardwareSetting, standard_setting
from repro.accelerator.dataflow import analyze_network
from repro.accelerator.energy import EnergyModel
from repro.accelerator.workloads import WORKLOADS

NETWORKS = ("resnet18", "resnet50", "vgg16", "mobilenet_v1", "alexnet")


def access_ratios(array_size: int = 64):
    model = EnergyModel()
    config = standard_setting(HardwareSetting.EWS_BASE, array_size)
    result = {}
    for name in NETWORKS:
        layers = WORKLOADS[name]()
        analysis = analyze_network(layers, config)
        by_level = model.data_access_by_level(analysis, config)
        total = sum(by_level.values())
        result[name] = {level: value / total for level, value in by_level.items()}
    return result


def test_fig14_access_breakdown(benchmark):
    ratios = benchmark(access_ratios)
    levels = ("dram", "l2", "l1", "prf", "arf", "wrf", "crf")
    rows = [(name, *(fmt(ratios[name][lvl] * 100, 1) + "%" for lvl in levels))
            for name in NETWORKS]
    print_table("Fig. 14: data access cost ratio by memory level (EWS base, 64x64)",
                ("network", *levels), rows)
    # the paper's observation: DRAM access overhead accounts for the majority
    for name in NETWORKS:
        assert ratios[name]["dram"] > 0.5
