"""Fig. 13: compression-ratio vs accuracy curves on ResNet-18 and ResNet-50 —
layerwise MVQ, crosslayer MVQ, PQF and BGD over a sweep of codebook sizes."""

import numpy as np

from benchmarks._common import copy_of, finetune, fmt, print_table
from repro.baselines import BGDCompressor, PQFCompressor
from repro.core import LayerCompressionConfig, MVQCompressor

K_SWEEP = (16, 32, 64)


def cr_accuracy_curves(model_name: str = "resnet18"):
    curves = {}

    def point(method, k):
        model, _ = copy_of(model_name)
        if method == "layerwise-MVQ" or method == "crosslayer-MVQ":
            # the mini models tolerate 50% (not 75%) sparsity, mirroring how the
            # paper picks the pruning rate per model family (Section 6.2)
            cfg = LayerCompressionConfig(k=k, d=16, n_keep=8, m=16, max_kmeans_iterations=25)
            compressed = MVQCompressor(cfg, crosslayer=(method == "crosslayer-MVQ")).compress(model)
        elif method == "PQF":
            cfg = LayerCompressionConfig(k=k * 2, d=8, max_kmeans_iterations=25)
            compressed = PQFCompressor(cfg, permutation_iterations=25).compress(model)
        else:  # BGD
            cfg = LayerCompressionConfig(k=k * 2, d=8, max_kmeans_iterations=25)
            compressed = BGDCompressor(cfg).compress(model)
        compressed.apply_to_model()
        accuracy = finetune(model, compressed, epochs=2)
        return compressed.compression_ratio(), accuracy

    for method in ("layerwise-MVQ", "crosslayer-MVQ", "PQF", "BGD"):
        curves[method] = [point(method, k) for k in K_SWEEP]
    return curves


def test_fig13_cr_curves(benchmark):
    curves = benchmark.pedantic(cr_accuracy_curves, rounds=1, iterations=1)
    rows = []
    for method, points in curves.items():
        for k, (ratio, acc) in zip(K_SWEEP, points):
            rows.append((method, k, fmt(ratio, 1) + "x", fmt(acc, 3)))
    print_table("Fig. 13: compression ratio vs accuracy (ResNet-18)",
                ("method", "k", "compression ratio", "accuracy"), rows)

    def best_accuracy(method):
        return max(acc for _, acc in curves[method])

    # Shape checks.  On the easy synthetic task every VQ method recovers most of
    # the accuracy, so the discriminating claims are: (i) MVQ stays within a few
    # points of the dense-VQ baselines while ALSO making the model 50% sparse
    # (the FLOPs advantage of Table 4), and (ii) MVQ accuracy improves (or at
    # least does not degrade) as the codebook grows.
    assert best_accuracy("layerwise-MVQ") >= max(best_accuracy("PQF"),
                                                 best_accuracy("BGD")) - 0.15
    mvq = [acc for _, acc in curves["layerwise-MVQ"]]
    assert mvq[-1] >= mvq[0] - 0.05
    # every method reaches a usable operating point at >10x compression
    for method, points in curves.items():
        assert any(ratio > 10 and acc > 0.5 for ratio, acc in points), method
