"""Table 4: MVQ vs baselines across the model zoo (accuracy, CR, sparsity, FLOPs)."""

from benchmarks._common import copy_of, finetune, fmt, print_table
from repro.baselines import PQFCompressor, PvQQuantizer
from repro.core import LayerCompressionConfig, MVQCompressor
from repro.nn.flops import count_flops, count_sparse_flops

# (model, N:M pattern) — ResNets tolerate 75% sparsity, parameter-efficient
# models use 50% (Section 6.2)
MODEL_SPECS = {
    "resnet50": dict(n_keep=2, m=8, d=8),
    "mobilenet_v1": dict(n_keep=1, m=2, d=8),
    "mobilenet_v2": dict(n_keep=1, m=2, d=8),
    "efficientnet": dict(n_keep=1, m=2, d=8),
    "alexnet": dict(n_keep=2, m=8, d=8),
    "vgg16": dict(n_keep=2, m=8, d=8),
}


def compress_zoo(k: int = 40):
    results = {}
    for name, spec in MODEL_SPECS.items():
        model, baseline = copy_of(name)
        cfg = LayerCompressionConfig(k=k, d=spec["d"], n_keep=spec["n_keep"], m=spec["m"],
                                     max_kmeans_iterations=25)
        compressed = MVQCompressor(cfg).compress(model)
        compressed.apply_to_model()
        # conservative fine-tuning rate: AlexNet/VGG-mini have no batch norm and
        # diverge at the rate the ResNets tolerate
        accuracy = finetune(model, compressed, epochs=2, lr=0.008, codebook_lr=2e-3)
        dense_flops = count_flops(model, (3, 16, 16))
        flops = count_sparse_flops(model, (3, 16, 16),
                                   sparsity_by_layer=compressed.sparsity_by_layer())
        results[name] = {
            "baseline": baseline,
            "mvq_acc": accuracy,
            "ratio": compressed.compression_ratio(),
            "sparsity": compressed.sparsity(),
            "flops": flops,
            "dense_flops": dense_flops,
        }
    # comparators on ResNet-50: PQF at a similar ratio; on MobileNet-V2: 2-bit PvQ
    model, _ = copy_of("resnet50")
    pqf = PQFCompressor(LayerCompressionConfig(k=80, d=8, max_kmeans_iterations=25),
                        permutation_iterations=40).compress(model)
    pqf.apply_to_model()
    results["resnet50"]["pqf_acc"] = finetune(model, pqf, epochs=2, lr=0.008, codebook_lr=2e-3)

    model, _ = copy_of("mobilenet_v2")
    pvq = PvQQuantizer(bits=2)
    pvq.apply(model)
    results["mobilenet_v2"]["pvq_acc"] = __import__(
        "benchmarks._common", fromlist=["validation_accuracy"]).validation_accuracy(model)
    return results


def test_table4_model_zoo(benchmark):
    results = benchmark.pedantic(compress_zoo, rounds=1, iterations=1)
    rows = []
    for name, r in results.items():
        rows.append((name, fmt(r["baseline"], 3), fmt(r["mvq_acc"], 3),
                     fmt(r["ratio"], 1) + "x", f"{r['sparsity']:.0%}",
                     fmt(r["flops"] / 1e6, 2) + "M",
                     fmt(r.get("pqf_acc", float("nan")), 3) if "pqf_acc" in r else "-",
                     fmt(r.get("pvq_acc", float("nan")), 3) if "pvq_acc" in r else "-"))
    print_table("Table 4: MVQ across the model zoo (synthetic-task accuracies)",
                ("model", "dense acc", "MVQ acc", "CR", "sparsity", "FLOPs",
                 "PQF acc", "PvQ(2b) acc"), rows)
    # shapes from the paper:
    for name, r in results.items():
        assert r["mvq_acc"] > 0.4                    # far above chance (1/5)
        assert r["flops"] < r["dense_flops"]         # pruning reduces FLOPs
        assert r["ratio"] > 6                        # high compression throughout
        # (the mini models' codebook overhead caps the ratio well below the ~16-28x
        #  the paper reports on full-size networks; see EXPERIMENTS.md)
    # MVQ beats 2-bit uniform quantization on MobileNet-V2 (PvQ collapses)
    assert results["mobilenet_v2"]["mvq_acc"] > results["mobilenet_v2"]["pvq_acc"]
    # On ResNet-50 MVQ trades a few points against dense PQF but is 75% sparse,
    # which is where the 3.7x FLOPs reduction of the paper's Table 4 comes from
    assert results["resnet50"]["mvq_acc"] > 0.5
    assert results["resnet50"]["flops"] < 0.4 * results["resnet50"]["dense_flops"]
