"""Ablation: uniform vs mixed layer-wise N:M sparsity.

Section 6.2 notes that the pruning rate is a per-model trade-off and cites
DominoSearch for mixed layer-wise patterns; this bench compares a uniform
4:16 assignment against the sensitivity-guided mixed search at a matched
average sparsity, reporting the important-weight clustering error each one
leaves for masked k-means.
"""

from benchmarks._common import copy_of, fmt, print_table
from repro.core import LayerCompressionConfig, MVQCompressor, MixedSparsitySearch
from repro.core.mixed_sparsity import overall_sparsity


def uniform_vs_mixed(model_name: str = "resnet18"):
    base = LayerCompressionConfig(k=32, d=16, n_keep=4, m=16, max_kmeans_iterations=25)

    model, _ = copy_of(model_name)
    uniform = MVQCompressor(base).compress(model)

    model, _ = copy_of(model_name)
    search = MixedSparsitySearch(candidates=(8, 6, 4, 3), m=16, d=16,
                                 error_tolerance=1.0, target_sparsity=0.75)
    choices = search.search(model)
    overrides = search.to_layer_overrides(choices, base)
    mixed = MVQCompressor(base, per_layer_overrides=overrides).compress(model)

    return {
        "uniform": {"sparsity": uniform.sparsity(), "mask_sse": uniform.mask_sse(),
                    "ratio": uniform.compression_ratio()},
        "mixed": {"sparsity": mixed.sparsity(), "mask_sse": mixed.mask_sse(),
                  "ratio": mixed.compression_ratio(),
                  "per_layer": {n: c.n_keep for n, c in choices.items()}},
    }


def test_ablation_mixed_sparsity(benchmark):
    results = benchmark.pedantic(uniform_vs_mixed, rounds=1, iterations=1)
    rows = [
        ("uniform 4:16", f"{results['uniform']['sparsity']:.0%}",
         fmt(results["uniform"]["mask_sse"], 2), fmt(results["uniform"]["ratio"], 1) + "x"),
        ("mixed (sensitivity-guided)", f"{results['mixed']['sparsity']:.0%}",
         fmt(results["mixed"]["mask_sse"], 2), fmt(results["mixed"]["ratio"], 1) + "x"),
    ]
    print_table("Ablation: uniform vs mixed layer-wise N:M (ResNet-18)",
                ("assignment", "avg sparsity", "mask SSE", "CR"), rows)
    patterns = set(results["mixed"]["per_layer"].values())
    print(f"mixed assignment uses N values: {sorted(patterns, reverse=True)}")
    # both reach a comparable average sparsity; the mixed assignment is allowed
    # to keep sensitive layers denser, so it never uses a single pattern blindly
    assert abs(results["mixed"]["sparsity"] - results["uniform"]["sparsity"]) < 0.2
    assert results["mixed"]["mask_sse"] > 0
