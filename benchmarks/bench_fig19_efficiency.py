"""Fig. 19: energy efficiency (TOPS/W) of the six hardware settings on three
array sizes, ResNet-18 and ResNet-50."""

from benchmarks._common import fmt, print_table
from repro.accelerator.config import ALL_SETTINGS, standard_setting
from repro.accelerator.performance import PerformanceModel
from repro.accelerator.workloads import WORKLOADS

PAPER = {
    "resnet18": {
        16: (0.7, 0.9, 1.5, 1.8, 1.9, 2.3),
        32: (1.5, 2.1, 2.2, 2.6, 3.0, 4.1),
        64: (2.1, 4.5, 2.9, 3.8, 4.3, 6.9),
    },
    "resnet50": {
        16: (0.9, 1.1, 1.8, 1.8, 1.9, 2.4),
        32: (1.4, 2.1, 2.3, 2.7, 3.1, 4.1),
        64: (1.9, 3.2, 2.6, 3.4, 4.0, 5.7),
    },
}
SETTING_ORDER = [s.value for s in ALL_SETTINGS]


def efficiency_table(network: str):
    pm = PerformanceModel()
    layers = WORKLOADS[network]()
    return pm.efficiency_sweep(layers, ALL_SETTINGS, array_sizes=(16, 32, 64))


def _check_and_print(network, table):
    rows = []
    for size in (16, 32, 64):
        measured = [table[size][name] for name in SETTING_ORDER]
        rows.append((size, *(fmt(v) for v in measured),
                     "/".join(str(v) for v in PAPER[network][size])))
    print_table(f"Fig. 19: energy efficiency TOPS/W, {network}",
                ("array", *SETTING_ORDER, "paper (same order)"), rows)
    for size in (16, 32, 64):
        eff = table[size]
        # ordering the paper reports: MVQ settings beat their baselines,
        # the full EWS-CMS design is the most efficient
        assert eff["EWS-CMS"] == max(eff.values())
        assert eff["EWS"] > eff["WS"]
        assert eff["WS-CMS"] > eff["WS"]
    # headline: 2.3x gain over base EWS at 64x64 (paper), we accept 1.8-3.5x
    gain = table[64]["EWS-CMS"] / table[64]["EWS"]
    print(f"EWS-CMS / EWS efficiency gain @64x64: {gain:.2f}x (paper ~2.3x)")
    assert 1.8 < gain < 3.5


def test_fig19_efficiency_resnet18(benchmark):
    table = benchmark(efficiency_table, "resnet18")
    _check_and_print("resnet18", table)


def test_fig19_efficiency_resnet50(benchmark):
    table = benchmark(efficiency_table, "resnet50")
    _check_and_print("resnet50", table)
