"""Table 5: clustering SSE (before fine-tuning) and accuracy, MVQ vs PQF at a
matched ~22x compression ratio on ResNet-18 and ResNet-50."""

import numpy as np

from benchmarks._common import copy_of, finetune, fmt, print_table
from repro.baselines import PQFCompressor
from repro.core import LayerCompressionConfig, MVQCompressor
from repro.core.grouping import group_weight
from repro.core.metrics import masked_sse
from repro.core.pruning import nm_prune_mask


def sse_comparison(models=("resnet18", "resnet50")):
    results = {}
    for name in models:
        model, baseline = copy_of(name)
        # d=8 with 2:8 sparsity so that every conv layer of the mini models
        # (including the narrow bottleneck layers of ResNet-50-mini) is covered
        mvq_cfg = LayerCompressionConfig(k=32, d=8, n_keep=2, m=8, max_kmeans_iterations=30)
        mvq = MVQCompressor(mvq_cfg).compress(model)
        mvq_sse = mvq.mask_sse()
        mvq.apply_to_model()
        mvq_acc = finetune(model, mvq, epochs=2)

        model_pqf, _ = copy_of(name)
        pqf_cfg = LayerCompressionConfig(k=48, d=8, max_kmeans_iterations=30)
        pqf = PQFCompressor(pqf_cfg, permutation_iterations=40).compress(model_pqf)
        # evaluate PQF's error on the same important-weight set as MVQ uses
        pqf_sse = 0.0
        modules = dict(model_pqf.named_modules())
        for state in pqf:
            original = group_weight(modules[state.name].weight.value, 8)
            recon = group_weight(state.reconstruct_weight(), 8)
            mask = nm_prune_mask(original, 2, 8)
            pqf_sse += masked_sse(original, recon, mask)
        pqf.apply_to_model()
        pqf_acc = finetune(model_pqf, pqf, epochs=2)

        results[name] = {"baseline": baseline, "mvq_sse": mvq_sse, "mvq_acc": mvq_acc,
                         "pqf_sse": pqf_sse, "pqf_acc": pqf_acc,
                         "mvq_ratio": mvq.compression_ratio(),
                         "pqf_ratio": pqf.compression_ratio()}
    return results


def test_table5_sse_vs_pqf(benchmark):
    results = benchmark.pedantic(sse_comparison, rounds=1, iterations=1)
    rows = []
    for name, r in results.items():
        rows.append((name, "PQF", fmt(r["pqf_sse"], 2), fmt(r["pqf_acc"], 3),
                     fmt(r["pqf_ratio"], 1) + "x"))
        rows.append((name, "MVQ (ours)", fmt(r["mvq_sse"], 2), fmt(r["mvq_acc"], 3),
                     fmt(r["mvq_ratio"], 1) + "x"))
    print_table("Table 5: important-weight SSE and accuracy at matched compression ratio",
                ("model", "method", "SSE (important weights)", "accuracy", "CR"), rows)
    for name, r in results.items():
        # paper shape: MVQ reaches significantly lower SSE on the important
        # weights — this is the deterministic claim (pure clustering, no SGD)
        assert r["mvq_sse"] < r["pqf_sse"]
        # and broadly comparable accuracy after a short fine-tuning pass (MVQ
        # is additionally 75% sparse, which is what buys the FLOPs
        # reduction).  The historical flakiness here came from the cached
        # splits' stateful shuffle RNGs: batch order — hence the fine-tuned
        # accuracy — depended on which benchmarks ran earlier in the
        # process.  _common's training helpers now reseed the shuffle
        # stream per call (see reseed_splits), so these asserts are
        # deterministic for a given codebase; the bounds stay loose on
        # purpose, catching collapses rather than small numeric drift.
        assert r["mvq_acc"] >= r["pqf_acc"] - 0.35
        assert r["mvq_acc"] > 0.25
