"""Fig. 16: power-consumption breakdown (Accel / L1 / L2 / Other) for the six
hardware settings, ResNet-18 and ResNet-50, three array sizes."""

from benchmarks._common import fmt, print_table
from repro.accelerator.config import ALL_SETTINGS, standard_setting
from repro.accelerator.dataflow import analyze_network
from repro.accelerator.energy import EnergyModel
from repro.accelerator.workloads import WORKLOADS


def power_breakdown(network: str):
    model = EnergyModel()
    layers = WORKLOADS[network]()
    table = {}
    for size in (16, 32, 64):
        for setting in ALL_SETTINGS:
            config = standard_setting(setting, size)
            analysis = analyze_network(layers, config)
            table[(size, setting.value)] = model.power_breakdown_mw(analysis, config)
    return table


def _rows(table):
    rows = []
    for (size, setting), power in table.items():
        rows.append((size, setting, fmt(power["accel"], 1), fmt(power["l1"], 1),
                     fmt(power["l2"], 1), fmt(power["others"], 1)))
    return rows


def test_fig16_power_breakdown_resnet18(benchmark):
    table = benchmark(power_breakdown, "resnet18")
    print_table("Fig. 16: power breakdown (mW), ResNet-18",
                ("array", "setting", "Accel", "L1", "L2", "Other"), _rows(table))
    # shapes the paper highlights at 64x64:
    assert table[(64, "WS")]["l1"] > 2 * table[(64, "EWS")]["l1"]          # WS has high L1 power
    assert table[(64, "EWS-CMS")]["accel"] < table[(64, "EWS")]["accel"]   # sparse tile cuts Accel power


def test_fig16_power_breakdown_resnet50(benchmark):
    table = benchmark(power_breakdown, "resnet50")
    print_table("Fig. 16: power breakdown (mW), ResNet-50",
                ("array", "setting", "Accel", "L1", "L2", "Other"), _rows(table))
    assert table[(64, "EWS-CMS")]["accel"] < table[(64, "EWS")]["accel"]
