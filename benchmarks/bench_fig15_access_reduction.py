"""Fig. 15: data-access cost reduction from MVQ compression (5 CNNs x 3 array sizes)."""

from benchmarks._common import fmt, print_table
from repro.accelerator.config import HardwareSetting, standard_setting
from repro.accelerator.energy import data_access_reduction
from repro.accelerator.workloads import WORKLOADS

NETWORKS = ("resnet18", "resnet50", "vgg16", "mobilenet_v1", "alexnet")
PAPER_64 = {"resnet18": 4.1, "resnet50": 3.4, "vgg16": 1.9, "mobilenet_v1": 1.9, "alexnet": 3.0}


def reductions():
    table = {}
    for name in NETWORKS:
        layers = WORKLOADS[name]()
        skip_dw = name.startswith("mobilenet")
        table[name] = {
            size: data_access_reduction(
                layers,
                standard_setting(HardwareSetting.EWS_BASE, size),
                standard_setting(HardwareSetting.EWS_CMS, size),
                skip_depthwise=skip_dw,
            )
            for size in (16, 32, 64)
        }
    return table


def test_fig15_access_reduction(benchmark):
    table = benchmark(reductions)
    rows = [(name, fmt(table[name][16]), fmt(table[name][32]), fmt(table[name][64]),
             fmt(PAPER_64[name], 1))
            for name in NETWORKS]
    print_table("Fig. 15: data access cost reduction (base EWS / EWS-CMS)",
                ("network", "16x16", "32x32", "64x64", "paper@64"), rows)
    # shape: every network benefits, ResNet-18 the most, VGG-16 the least at 64x64
    assert all(table[n][64] > 1.3 for n in NETWORKS)
    assert table["resnet18"][64] > table["vgg16"][64]
