"""Fig. 17: speed-up of WS-CMS / EWS / EWS-CMS over the WS baseline at 64x64."""

from benchmarks._common import fmt, print_table
from repro.accelerator.config import HardwareSetting, standard_setting
from repro.accelerator.performance import PerformanceModel
from repro.accelerator.workloads import WORKLOADS

NETWORKS = ("resnet18", "resnet50", "vgg16", "mobilenet_v1", "alexnet")
SETTINGS = (HardwareSetting.WS_CMS, HardwareSetting.EWS_BASE, HardwareSetting.EWS_CMS)
PAPER = {  # (WS-CMS, EWS, EWS-CMS) speedups at 64x64
    "resnet18": (1.4, 1.2, 2.2),
    "resnet50": (1.2, 1.3, 1.9),
    "vgg16": (1.2, 1.3, 1.9),
    "mobilenet_v1": (1.1, 1.3, 1.5),
    "alexnet": (1.1, 1.4, 1.7),
}


def speedups(array_size: int = 64):
    pm = PerformanceModel()
    table = {}
    for name in NETWORKS:
        layers = WORKLOADS[name]()
        skip_dw = name.startswith("mobilenet")
        baseline = standard_setting(HardwareSetting.WS_BASE, array_size)
        table[name] = {
            setting.value: pm.speedup(layers, standard_setting(setting, array_size),
                                      baseline, skip_depthwise=skip_dw)
            for setting in SETTINGS
        }
    return table


def test_fig17_speedup(benchmark):
    table = benchmark(speedups)
    rows = []
    for name in NETWORKS:
        measured = tuple(fmt(table[name][s.value]) for s in SETTINGS)
        paper = "/".join(str(v) for v in PAPER[name])
        rows.append((name, *measured, paper))
    print_table("Fig. 17: speedup over WS baseline (64x64)",
                ("network", "WS-CMS", "EWS", "EWS-CMS", "paper (WS-CMS/EWS/EWS-CMS)"), rows)
    for name in NETWORKS:
        # shape: every setting is at least as fast as WS, EWS-CMS is the fastest
        assert table[name]["EWS"] >= 1.0
        assert table[name]["EWS-CMS"] >= table[name]["EWS"]
        assert table[name]["EWS-CMS"] > 1.3
