"""Ablation: zero-value gating in the PEs (Section 5.3).

Sweeps the zero-gating assumption in the energy model and reports the
efficiency of EWS-CM / EWS-CMS with and without gating, plus the functional
gating rate measured on a sparse tile driven by ReLU-like activations.
"""

import numpy as np

from benchmarks._common import fmt, print_table
from repro.accelerator.config import HardwareSetting, standard_setting
from repro.accelerator.dataflow import analyze_network
from repro.accelerator.energy import EnergyModel
from repro.accelerator.systolic import SparseTile
from repro.accelerator.workloads import WORKLOADS
from repro.core.pruning import nm_prune_mask


def gating_sweep():
    layers = WORKLOADS["resnet18"]()
    results = {}
    for act_zero in (0.0, 0.4):
        model = EnergyModel(activation_zero_fraction=act_zero)
        for setting in (HardwareSetting.EWS_CM, HardwareSetting.EWS_CMS):
            cfg = standard_setting(setting, 64)
            analysis = analyze_network(layers, cfg)
            results[(setting.value, act_zero)] = model.efficiency_tops_per_watt(analysis, cfg)
    return results


def measured_gating_rate(num_vectors: int = 200, act_zero: float = 0.4):
    rng = np.random.default_rng(0)
    tile = SparseTile(d=16, q=4)
    for _ in range(num_vectors):
        weights = rng.normal(size=16)
        mask = nm_prune_mask(np.abs(weights).reshape(1, 16), 4, 16)[0]
        tile.load_weights(weights * mask, mask)
        activation = 0.0 if rng.random() < act_zero else float(rng.normal())
        tile.compute(activation)
    return float(np.mean([pe.gating_rate for pe in tile.pes]))


def test_ablation_zero_gating(benchmark):
    results = benchmark.pedantic(gating_sweep, rounds=1, iterations=1)
    rows = [(setting, f"{act_zero:.0%}", fmt(eff, 2))
            for (setting, act_zero), eff in results.items()]
    print_table("Ablation: zero-value gating (ResNet-18, 64x64)",
                ("setting", "activation zero fraction", "TOPS/W"), rows)
    # gating on realistic post-ReLU sparsity improves efficiency for both settings
    assert results[("EWS-CM", 0.4)] > results[("EWS-CM", 0.0)]
    assert results[("EWS-CMS", 0.4)] > results[("EWS-CMS", 0.0)]

    rate = measured_gating_rate()
    print(f"functional sparse-tile gating rate at 40% zero activations: {rate:.2f}")
    assert 0.25 < rate < 0.55
