"""Fig. 20: energy-efficiency gain over the WS baseline for VGG-16, AlexNet and
MobileNet-V1 (pointwise convolutions only), across array sizes."""

from benchmarks._common import fmt, print_table
from repro.accelerator.config import HardwareSetting, standard_setting
from repro.accelerator.performance import PerformanceModel
from repro.accelerator.workloads import WORKLOADS

NETWORKS = ("vgg16", "alexnet", "mobilenet_v1")
SETTINGS = (HardwareSetting.WS_CMS, HardwareSetting.EWS_BASE, HardwareSetting.EWS_CMS)


def efficiency_gains():
    pm = PerformanceModel()
    table = {}
    for name in NETWORKS:
        layers = WORKLOADS[name]()
        skip_dw = name.startswith("mobilenet")
        for size in (16, 32, 64):
            ws = pm.efficiency(layers, standard_setting(HardwareSetting.WS_BASE, size),
                               skip_depthwise=skip_dw)
            for setting in SETTINGS:
                eff = pm.efficiency(layers, standard_setting(setting, size),
                                    skip_depthwise=skip_dw)
                table[(name, size, setting.value)] = eff / ws
    return table


def test_fig20_efficiency_gain(benchmark):
    table = benchmark(efficiency_gains)
    rows = []
    for name in NETWORKS:
        for size in (16, 32, 64):
            rows.append((name, size,
                         *(fmt(table[(name, size, s.value)]) for s in SETTINGS)))
    print_table("Fig. 20: efficiency gain vs WS baseline",
                ("network", "array", "WS-CMS", "EWS", "EWS-CMS"), rows)
    # the paper's summary: MVQ gives an average gain of ~46% (WS) and ~90% (EWS);
    # shape check — every gain > 1 and EWS-CMS is the largest gain per network/size
    for name in NETWORKS:
        for size in (16, 32, 64):
            gains = {s.value: table[(name, size, s.value)] for s in SETTINGS}
            assert all(g >= 0.95 for g in gains.values())
            assert gains["EWS-CMS"] >= gains["EWS"]
    avg_ws_cms = sum(table[(n, s, "WS-CMS")] for n in NETWORKS for s in (16, 32, 64)) / 9
    avg_ews_cms = sum(table[(n, s, "EWS-CMS")] for n in NETWORKS for s in (16, 32, 64)) / 9
    print(f"average WS-CMS gain {avg_ws_cms:.2f}x (paper ~1.46x), "
          f"average EWS-CMS gain {avg_ews_cms:.2f}x (paper ~1.9x)")
