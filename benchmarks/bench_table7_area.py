"""Table 7: accelerator area on 3 array scales for WS / EWS / EWS-C/CM / EWS-CMS."""

from benchmarks._common import fmt, print_table
from repro.accelerator.area import AreaModel, L1_AREA_MM2, L2_AREA_MM2, OTHERS_AREA_MM2

PAPER = {
    "WS": {16: 0.188, 32: 0.734, 64: 2.812},
    "EWS": {16: 0.36, 32: 1.14, 64: 4.236},
    "EWS-C/CM": {16: 0.650, 32: 1.505, 64: 4.776},
    "EWS-CMS": {16: 0.469, 32: 0.828, 64: 2.129},
}


def build_table7():
    model = AreaModel()
    table = model.table7()
    rows = []
    for label, sizes in table.items():
        for size, area in sizes.items():
            rows.append((label, size, fmt(area, 3), fmt(PAPER[label][size], 3)))
    rows.append(("L1 (128K/256K)", "-", f"{L1_AREA_MM2[128]}/{L1_AREA_MM2[256]}", "0.484/0.968"))
    rows.append(("L2", "-", fmt(L2_AREA_MM2, 3), "6.924"))
    rows.append(("Others (16/32/64)", "-",
                 "/".join(fmt(OTHERS_AREA_MM2[s], 3) for s in (16, 32, 64)),
                 "0.787/1.303/1.659"))
    return table, rows


def test_table7_area(benchmark):
    table, rows = benchmark(build_table7)
    print_table("Table 7: area (mm^2) per accelerator setting and array size",
                ("setting", "array", "measured", "paper"), rows)
    # headline shape: EWS-CMS cuts the 64x64 accelerator area by ~55% vs EWS
    reduction = 1 - table["EWS-CMS"][64] / table["EWS"][64]
    print(f"EWS-CMS vs EWS area reduction @64x64: {reduction:.0%} (paper: 55%)")
    assert 0.4 < reduction < 0.7
