"""Table 3: ablation of the MVQ pipeline on ResNet-18 at a matched compression ratio.

Cases (Fig. 12): A = dense weights + common k-means + dense reconstruction,
B = sparse weights + common k-means + dense reconstruction, C = sparse weights
+ common k-means + sparse reconstruction, D (ours) = sparse weights + masked
k-means + sparse reconstruction.  A/B use (k, d) = (2x, 8) while C/D use
(x, 16) so that all four land at the same compression ratio, as in the paper.
"""

from benchmarks._common import copy_of, finetune, fmt, print_table
from repro.core import LayerCompressionConfig, MVQCompressor
from repro.nn.flops import count_flops, count_sparse_flops


def run_ablation(model_name: str = "resnet18", k_small: int = 24):
    cfg_dense = LayerCompressionConfig(k=k_small * 2, d=8, n_keep=2, m=8,
                                       max_kmeans_iterations=30)
    cfg_sparse = LayerCompressionConfig(k=k_small, d=16, n_keep=4, m=16,
                                        max_kmeans_iterations=30)
    results = {}
    for case, cfg in (("A", cfg_dense), ("B", cfg_dense), ("C", cfg_sparse), ("D", cfg_sparse)):
        model, baseline = copy_of(model_name)
        compressor = MVQCompressor.ablation_case(case, cfg)
        compressed = compressor.compress(model)
        compressed.apply_to_model()
        accuracy = finetune(model, compressed, epochs=2)
        dense_flops = count_flops(model, (3, 16, 16))
        flops = count_sparse_flops(model, (3, 16, 16),
                                   sparsity_by_layer=compressed.sparsity_by_layer())
        results[case] = {
            "total_sse": compressed.total_sse(),
            "mask_sse": compressed.mask_sse(),
            "ratio": compressed.compression_ratio(),
            "flops": flops,
            "dense_flops": dense_flops,
            "accuracy": accuracy,
            "baseline": baseline,
        }
    return results


def test_table3_ablation(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = []
    for case in ("A", "B", "C", "D"):
        r = results[case]
        label = "D (MVQ, ours)" if case == "D" else case
        rows.append((label, fmt(r["total_sse"], 1), fmt(r["mask_sse"], 1),
                     fmt(r["ratio"], 1) + "x", fmt(r["flops"] / 1e6, 2) + "M",
                     fmt(r["accuracy"], 3)))
    rows.append(("dense baseline", "-", "-", "1x",
                 fmt(results["A"]["dense_flops"] / 1e6, 2) + "M",
                 fmt(results["A"]["baseline"], 3)))
    print_table("Table 3: ablation on ResNet-18 (matched compression ratio)",
                ("case", "total SSE", "mask SSE", "CR", "FLOPs", "accuracy"), rows)

    # the paper's shapes:
    # 1. masked k-means (D) reaches far lower mask SSE than common k-means on sparse weights (C)
    assert results["D"]["mask_sse"] < results["C"]["mask_sse"]
    # 2. sparse reconstruction cuts FLOPs (~70%) vs dense reconstruction
    assert results["D"]["flops"] < 0.5 * results["A"]["flops"]
    # 3. D stays at the top of the accuracy band (the short 1-epoch fine-tuning
    #    pass makes individual accuracies noisy by a few points)
    assert results["D"]["accuracy"] >= max(results[c]["accuracy"] for c in "ABC") - 0.12
    assert results["D"]["accuracy"] >= results["C"]["accuracy"]
