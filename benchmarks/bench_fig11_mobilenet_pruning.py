"""Fig. 11: pruning-strategy experiments on MobileNet-V2 — 1:2 vs 2:4 pruning,
layerwise vs crosslayer clustering, compression ratio vs accuracy."""

from benchmarks._common import copy_of, finetune, fmt, print_table
from repro.core import LayerCompressionConfig, MVQCompressor


def mobilenet_pruning_points(model_name: str = "mobilenet_v2"):
    points = {}
    variants = {
        "layerwise-1:2": dict(n_keep=1, m=2, crosslayer=False),
        "crosslayer-1:2": dict(n_keep=1, m=2, crosslayer=True),
        "layerwise-2:4": dict(n_keep=2, m=4, crosslayer=False),
    }
    for label, spec in variants.items():
        model, baseline = copy_of(model_name)
        cfg = LayerCompressionConfig(k=32, d=8, n_keep=spec["n_keep"], m=spec["m"],
                                     max_kmeans_iterations=25)
        compressed = MVQCompressor(cfg, crosslayer=spec["crosslayer"]).compress(model)
        compressed.apply_to_model()
        accuracy = finetune(model, compressed, epochs=1)
        points[label] = {
            "ratio": compressed.compression_ratio(),
            "accuracy": accuracy,
            "sparsity": compressed.sparsity(),
            "baseline": baseline,
        }
    return points


def test_fig11_mobilenet_pruning(benchmark):
    points = benchmark.pedantic(mobilenet_pruning_points, rounds=1, iterations=1)
    rows = [(label, fmt(p["ratio"], 1) + "x", f"{p['sparsity']:.0%}",
             fmt(p["accuracy"], 3), fmt(p["baseline"], 3))
            for label, p in points.items()]
    print_table("Fig. 11: pruning strategy on MobileNet-V2",
                ("variant", "compression ratio", "sparsity", "accuracy", "baseline"), rows)
    # shape: 2:4 needs more mask storage than 1:2 at the same 50% sparsity,
    # so its compression ratio is lower; accuracies stay in a similar band
    assert points["layerwise-1:2"]["ratio"] > points["layerwise-2:4"]["ratio"]
    assert points["crosslayer-1:2"]["ratio"] >= points["layerwise-1:2"]["ratio"]
    assert all(abs(p["sparsity"] - 0.5) < 0.01 for p in points.values())
