"""Table 1: partly vector-quantized accuracy — replacing important vs unimportant
weights with their VQ reconstructions (no fine-tuning).

Case 1 replaces the important weights (top-2-of-8 magnitude) with quantized
values; Case 2 replaces the unimportant ones.  The paper's observation: Case 2
has *higher* total SSE yet much higher accuracy, i.e. what matters is how well
the important weights are approximated.
"""

import numpy as np

from benchmarks._common import copy_of, fmt, print_table, validation_accuracy
from repro.core.grouping import group_weight, ungroup_weight
from repro.core.kmeans import kmeans
from repro.core.pruning import nm_prune_mask


def partly_quantized_accuracy(model_name: str, k: int = 64, d: int = 8):
    results = {}
    for case in ("case1", "case2"):
        model, baseline = copy_of(model_name)
        modules = dict(model.named_modules())
        sse = 0.0
        for name, mod in modules.items():
            if mod.__class__.__name__ != "Conv2d" or getattr(mod, "depthwise", False):
                continue
            weight = mod.weight.value
            if weight.shape[0] % d != 0:
                continue
            grouped = group_weight(weight, d)
            result = kmeans(grouped, min(k, grouped.shape[0]), max_iterations=30, seed=0)
            quantized = result.codewords[result.assignments]
            important = nm_prune_mask(grouped, 2, d)  # top-2-of-8 magnitude = important
            if case == "case1":
                mixed = np.where(important, quantized, grouped)
            else:
                mixed = np.where(important, grouped, quantized)
            sse += float(np.sum((mixed - grouped) ** 2))
            mod.weight.copy_(ungroup_weight(mixed, weight.shape, d))
        results[case] = {"sse": sse, "accuracy": validation_accuracy(model), "baseline": baseline}
    return results


def test_table1_importance(benchmark):
    results = benchmark.pedantic(partly_quantized_accuracy, args=("resnet18",),
                                 rounds=1, iterations=1)
    rows = [
        ("Case 1 (important weights quantized)", fmt(results["case1"]["sse"], 1),
         fmt(results["case1"]["accuracy"], 3)),
        ("Case 2 (unimportant weights quantized)", fmt(results["case2"]["sse"], 1),
         fmt(results["case2"]["accuracy"], 3)),
        ("dense baseline", "-", fmt(results["case1"]["baseline"], 3)),
    ]
    print_table("Table 1: partly vector-quantized accuracy (no fine-tuning)",
                ("case", "SSE", "top-1 accuracy"), rows)
    # paper shape: case 2 keeps far more accuracy than case 1 despite larger SSE
    assert results["case2"]["accuracy"] > results["case1"]["accuracy"]
