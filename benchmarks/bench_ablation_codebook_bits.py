"""Ablation: codebook quantization bit-width (Section 4.5).

Quantizing the codebook to int8 barely changes the clustering error but
removes the full-precision codebook from the accelerator datapath; lower bit
widths start to hurt.  This bench sweeps the codebook bit width and reports
mask SSE and compression ratio.
"""

from benchmarks._common import copy_of, fmt, print_table
from repro.core import LayerCompressionConfig, MVQCompressor


def codebook_bits_ablation(model_name: str = "resnet18", bits_sweep=(32, 8, 4, 2)):
    results = {}
    for bits in bits_sweep:
        model, _ = copy_of(model_name)
        cfg = LayerCompressionConfig(k=32, d=16, n_keep=4, m=16,
                                     codebook_bits=(bits if bits < 32 else 8),
                                     max_kmeans_iterations=25)
        compressor = MVQCompressor(cfg, quantize_codebook=(bits < 32))
        compressed = compressor.compress(model)
        if bits < 32:
            for state in compressed:
                state.codebook.quantize_(bits)
        results[bits] = {
            "mask_sse": compressed.mask_sse(),
            "ratio": compressed.compression_ratio(),
        }
    return results


def test_ablation_codebook_bits(benchmark):
    results = benchmark.pedantic(codebook_bits_ablation, rounds=1, iterations=1)
    rows = [(("fp32 (no quant)" if bits == 32 else f"int{bits}"),
             fmt(r["mask_sse"], 2), fmt(r["ratio"], 1) + "x")
            for bits, r in results.items()]
    print_table("Ablation: codebook quantization bit width (ResNet-18)",
                ("codebook format", "mask SSE", "compression ratio"), rows)
    # int8 is nearly free relative to fp32; 2-bit visibly degrades clustering error
    assert results[8]["mask_sse"] < results[32]["mask_sse"] * 1.3
    assert results[2]["mask_sse"] > results[8]["mask_sse"]


def test_ablation_lsq_vs_mse_scale(benchmark):
    """LSQ-initialised scale vs MSE-fit scale for the int8 codebook."""
    import numpy as np
    from repro.core.codebook import Codebook, fit_scale_mse, quantize_symmetric

    def run():
        rng = np.random.default_rng(0)
        codewords = rng.normal(size=(512, 16))
        lsq = Codebook(codewords.copy()).quantize_(8, use_lsq=True).codewords
        mse_scale = fit_scale_mse(codewords, 8)
        mse = quantize_symmetric(codewords, mse_scale, 8)
        return (float(np.mean((lsq - codewords) ** 2)),
                float(np.mean((mse - codewords) ** 2)))

    lsq_err, mse_err = benchmark(run)
    print(f"\nint8 codebook quantization MSE: LSQ-init {lsq_err:.2e} vs MSE-fit {mse_err:.2e}")
    # the LSQ scale starts coarse (it is refined during fine-tuning); both stay
    # tiny relative to the unit-variance codewords, and the MSE fit is tighter
    assert lsq_err < 1e-2
    assert mse_err <= lsq_err
