"""Ablation: grouping strategy (output-channel vs input-channel vs kernel-wise).

Section 4.3 argues for channel-wise grouping (flexible d, hardware friendly);
this bench quantifies the clustering-error difference between strategies at a
fixed codebook budget on a trained ResNet-18.
"""

from benchmarks._common import copy_of, fmt, print_table
from repro.core import GroupingStrategy, LayerCompressionConfig, MVQCompressor


def grouping_ablation(model_name: str = "resnet18"):
    results = {}
    strategies = {
        "output-wise (paper)": (GroupingStrategy.OUTPUT, 8),
        "input-wise": (GroupingStrategy.INPUT, 8),
        "kernel-wise": (GroupingStrategy.KERNEL, 9),
    }
    for label, (strategy, d) in strategies.items():
        model, _ = copy_of(model_name)
        m = d if d % 2 == 1 else 8
        n_keep = 3 if d == 9 else 2
        cfg = LayerCompressionConfig(k=32, d=d, n_keep=n_keep, m=m,
                                     strategy=strategy, max_kmeans_iterations=25)
        compressed = MVQCompressor(cfg).compress(model)
        results[label] = {
            "mask_sse": compressed.mask_sse(),
            "total_sse": compressed.total_sse(),
            "ratio": compressed.compression_ratio(),
            "layers": len(compressed),
        }
    return results


def test_ablation_grouping(benchmark):
    results = benchmark.pedantic(grouping_ablation, rounds=1, iterations=1)
    rows = [(label, r["layers"], fmt(r["mask_sse"], 2), fmt(r["total_sse"], 2),
             fmt(r["ratio"], 1) + "x") for label, r in results.items()]
    print_table("Ablation: grouping strategy on ResNet-18",
                ("strategy", "#layers", "mask SSE", "total SSE", "CR"), rows)
    # channel-wise grouping covers at least as many layers as kernel-wise
    assert results["output-wise (paper)"]["layers"] >= results["kernel-wise"]["layers"]
    assert all(r["mask_sse"] > 0 for r in results.values())
