"""Fig. 10: pruning-strategy sweep on ResNet-18 — pruning accuracy vs clustering
accuracy as the N:16 keep-rate varies (6:16 ... 3:16)."""

from benchmarks._common import copy_of, finetune, fmt, print_table
from repro.core import LayerCompressionConfig, MVQCompressor
from repro.core.pruning import SparseFinetuner
from repro.nn import CrossEntropyLoss, SGD, Trainer, evaluate_accuracy
from benchmarks._common import classification_splits


def pruning_sweep(model_name: str = "resnet18", keeps=(6, 5, 4, 3)):
    train, val = classification_splits()
    results = {}
    for n_keep in keeps:
        # pruning accuracy: N:16 sparse model after brief sparse fine-tuning
        model, baseline = copy_of(model_name)
        sparse = SparseFinetuner(model, n_keep=n_keep, m=16, d=16)
        trainer = Trainer(model, CrossEntropyLoss(),
                          SGD(model.parameters(), lr=0.02, momentum=0.9),
                          batch_size=32, hook=sparse.apply)
        trainer.fit(train, epochs=1)
        sparse.apply()
        pruning_acc = evaluate_accuracy(model, val)

        # clustering accuracy: masked VQ on top of the sparse model + fine-tuning
        cfg = LayerCompressionConfig(k=32, d=16, n_keep=n_keep, m=16, max_kmeans_iterations=25)
        compressed = MVQCompressor(cfg).compress(model)
        compressed.apply_to_model()
        clustering_acc = finetune(model, compressed, epochs=1)
        results[n_keep] = {
            "sparsity": 1 - n_keep / 16,
            "pruning_acc": pruning_acc,
            "clustering_acc": clustering_acc,
            "baseline": baseline,
        }
    return results


def test_fig10_pruning_sweep(benchmark):
    results = benchmark.pedantic(pruning_sweep, rounds=1, iterations=1)
    rows = [(f"{n}:16", f"{r['sparsity']:.0%}", fmt(r["pruning_acc"], 3),
             fmt(r["clustering_acc"], 3), fmt(r["baseline"], 3))
            for n, r in results.items()]
    print_table("Fig. 10: pruning strategy sweep on ResNet-18",
                ("pattern", "sparsity", "pruning acc", "clustering acc", "baseline"), rows)
    # shape: the mildest pruning pattern keeps at least as much accuracy as the
    # harshest one, and every operating point stays well above chance (20%)
    keeps = sorted(results, reverse=True)
    assert results[keeps[0]]["pruning_acc"] >= results[keeps[-1]]["pruning_acc"] - 0.05
    for n in keeps:
        assert results[n]["pruning_acc"] > 0.3
        assert results[n]["clustering_acc"] > 0.3
