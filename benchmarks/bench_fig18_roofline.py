"""Fig. 18: roofline model for the EWS array (sizes 16-64), ResNet-18 and ResNet-50."""

from benchmarks._common import fmt, print_table
from repro.accelerator.config import HardwareSetting, standard_setting
from repro.accelerator.roofline import RooflineModel
from repro.accelerator.workloads import WORKLOADS


def roofline_points():
    points = []
    for network in ("resnet18", "resnet50"):
        layers = WORKLOADS[network]()
        for size in (16, 32, 64):
            for setting, label in ((HardwareSetting.EWS_BASE, f"EWS-{size}"),
                                   (HardwareSetting.EWS_CMS, f"EWS-CMS-{size}")):
                config = standard_setting(setting, size)
                point = RooflineModel(config).point(layers, label=f"{network}:{label}")
                points.append((network, label, point))
    return points


def test_fig18_roofline(benchmark):
    points = benchmark(roofline_points)
    rows = [(network, label, fmt(p.operational_intensity, 1), fmt(p.performance_gops, 0),
             fmt(p.peak_gops, 0), p.bound)
            for network, label, p in points]
    print_table("Fig. 18: roofline points (operational intensity vs attained GOPS)",
                ("network", "config", "OPS/byte", "GOPS", "peak GOPS", "bound"), rows)
    by_label = {(n, l): p for n, l, p in points}
    # the paper's observation: base EWS is weight-loading (memory) bound at >=32x32,
    # MVQ compression moves the design into the compute-bound region
    for network in ("resnet18", "resnet50"):
        assert by_label[(network, "EWS-64")].bound == "memory"
        assert by_label[(network, "EWS-CMS-64")].bound == "compute"
        assert (by_label[(network, "EWS-CMS-64")].performance_gops
                > by_label[(network, "EWS-64")].performance_gops)
