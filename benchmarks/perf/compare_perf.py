"""Perf-regression gate: compare a fresh perf report against the baseline.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.compare_perf \
        --baseline BENCH_perf.json --current BENCH_perf_smoke.json

The tracked metrics are deliberately *scale-free ratios* (speedups), so
they are meaningful on any host; absolute wall times are never gated on.
Each tracked metric must stay within ``--tolerance`` (default 20%) of the
baseline value, or the gate exits non-zero.

Mode awareness: smoke-mode workloads are tiny, so their ratios differ from
full-mode ones — and are noisy.  A full-mode ``BENCH_perf.json`` written by
``run_perf --smoke-report s1.json s2.json ...`` embeds a ``tracked_smoke``
map holding the elementwise *minimum* of the tracked metrics over those
smoke runs (a conservative floor); when the current report's mode differs
from the baseline's, the gate compares against that map instead of the
full-mode numbers, and a baseline without the map fails the gate closed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

if __package__ in (None, ""):  # running as a plain script
    _root = Path(__file__).resolve().parents[2]
    for entry in (_root, _root / "src"):
        if str(entry) not in sys.path:
            sys.path.insert(0, str(entry))

#: section -> dotted metric paths; every entry is a higher-is-better ratio
#: with real headroom over run-to-run noise.  (pipeline.warm_speedup is
#: deliberately absent: in smoke mode it is a ratio of two ~50 ms wall
#: times, and cache-hit correctness is already hard-gated by
#: bench_pipeline.check_report and the pipeline-smoke CI job.)
TRACKED: Dict[str, List[str]] = {
    "clustering": ["speedup_fp64_vs_legacy", "speedup_fp32_vs_legacy"],
    "inference": ["speedup_compressed_vs_reconstruct",
                  "speedup_lut_vs_centroid",
                  "systolic_stream.stream_speedup_vs_scalar"],
    # serving.fault_mode.* is deliberately untracked: under injected faults
    # the wall time is dominated by retry backoffs and re-warm sleeps, so
    # its throughput/p95 are noise; resolution correctness (no hangs,
    # bit-exact successes) is hard-gated by bench_serving.check_fault_report
    # in the chaos-smoke CI job instead
    # serving.sharded.speedup_process_vs_thread IS tracked: the committed
    # baseline floor comes from whatever host wrote it (possibly 1-CPU,
    # where the ratio sits near 1.0), so the 20% tolerance gates real
    # multi-process regressions without flaking on core count; the hard
    # >=1.3x smoke gate on >=2-CPU hosts lives in
    # bench_serving.check_sharded_report
    "serving": ["speedup_batched_vs_sequential",
                "sharded.speedup_process_vs_thread"],
    # explore.cache_speedup is deliberately untracked: like
    # pipeline.warm_speedup it is a ratio of two sub-second smoke wall
    # times, and cache-hit correctness is already hard-gated by
    # bench_explore.check_report and the explore-smoke CI job
    "explore": ["speedup_parallel_vs_sequential"],
    # enabled/disabled span cost: a regression that bloats the disabled
    # fast path (the telemetry.disabled_overhead guarantee) shrinks this
    # ratio; the absolute ns budget is hard-gated by
    # bench_telemetry.check_report
    "telemetry": ["overhead_ratio_on_vs_off"],
}


def _resolve(section: Dict[str, Any], dotted: str) -> Optional[float]:
    value: Any = section
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return float(value)


def tracked_metrics(report: Dict[str, Any]) -> Dict[str, float]:
    """Flat ``section.metric.path -> value`` map of a report's tracked ratios."""
    flat: Dict[str, float] = {}
    for section, paths in TRACKED.items():
        data = report.get(section)
        if not isinstance(data, dict):
            continue
        for dotted in paths:
            value = _resolve(data, dotted)
            if value is not None:
                flat[f"{section}.{dotted}"] = value
    return flat


def compare(baseline: Dict[str, Any], current: Dict[str, Any],
            tolerance: float = 0.2,
            sections: Optional[Sequence[str]] = None) -> List[str]:
    """Regression errors (empty when the gate passes); prints a summary.

    ``sections`` restricts the comparison to those top-level report
    sections (e.g. ``["serving", "telemetry"]``) — for CI jobs that only
    regenerate part of the suite; a metric outside the listed sections is
    neither required of ``current`` nor gated.
    """
    current_tracked = tracked_metrics(current)
    if baseline.get("mode") == current.get("mode"):
        baseline_tracked = tracked_metrics(baseline)
        source = f"baseline ({baseline.get('mode')} mode)"
    else:
        baseline_tracked = baseline.get("tracked_smoke") or {}
        source = "baseline's embedded tracked_smoke map"
        if not baseline_tracked:
            # fail closed: a gate that silently has nothing to compare is
            # worse than a red build (regenerate the baseline with
            # `run_perf --smoke-report ...` to restore the map)
            return [f"mode mismatch ({baseline.get('mode')} baseline vs "
                    f"{current.get('mode')} current) and the baseline has no "
                    "tracked_smoke map — regenerate BENCH_perf.json with "
                    "run_perf --smoke-report so the gate has a floor"]

    errors: List[str] = []
    for key in sorted(set(current_tracked) | set(baseline_tracked)):
        if sections is not None and key.split(".", 1)[0] not in sections:
            continue
        have = current_tracked.get(key)
        want = baseline_tracked.get(key)
        if want is None:
            print(f"[compare] {key}: {have:.3f} (new metric, no baseline)")
            continue
        if have is None:
            errors.append(f"tracked metric {key} missing from the current report")
            continue
        floor = want * (1.0 - tolerance)
        status = "ok" if have >= floor else "REGRESSION"
        print(f"[compare] {key}: {have:.3f} vs {want:.3f} "
              f"(floor {floor:.3f}) {status}")
        if have < floor:
            errors.append(
                f"{key} regressed {100 * (1 - have / want):.1f}%: "
                f"{have:.3f} < {floor:.3f} (baseline {want:.3f} from {source})")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="BENCH_perf.json",
                        help="committed perf report to gate against")
    parser.add_argument("--current", required=True,
                        help="freshly generated perf report")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional regression (default 0.2)")
    parser.add_argument("--sections", default=None,
                        help="comma-separated report sections to gate "
                             "(default: all tracked sections)")
    args = parser.parse_args(argv)

    baseline = json.loads(Path(args.baseline).read_text())
    current = json.loads(Path(args.current).read_text())
    sections = args.sections.split(",") if args.sections else None
    errors = compare(baseline, current, tolerance=args.tolerance,
                     sections=sections)
    for error in errors:
        print(f"[compare] ERROR: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
