"""Tiny timing helpers shared by the perf microbenchmarks."""

from __future__ import annotations

import time
from typing import Callable


def best_of(fn: Callable[[], object], repeats: int = 3) -> float:
    """Best wall-time over ``repeats`` runs after one untimed warm-up call
    (so first-run costs — allocator, BLAS spin-up, page faults — do not
    skew whichever variant happens to be measured first)."""
    fn()
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
