"""Disabled-overhead gate for the tracing layer.

The whole point of leaving :mod:`repro.core.telemetry` span points compiled
into hot paths (batcher, worker forward, pipeline stages) is that a disabled
span point costs next to nothing: one module-global load, one ``is None``
check, and a shared no-op context manager — no allocation, no clock read.
This benchmark measures that cost directly and gates it:

* ``disabled_ns_per_span`` — cost of ``telemetry.span(...)`` as a context
  manager with tracing off.  Hard-bounded in :func:`check_report`.
* ``enabled_ns_per_span`` — the same span point with a live tracer
  (clock reads, record append).
* ``overhead_ratio_on_vs_off`` — enabled / disabled cost.  Higher is
  better for the tracked-metric gate: a regression that bloats the
  disabled fast path shrinks the ratio even if the enabled path got
  slower too.

``--quick`` runs a smaller iteration count for CI.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Dict

from repro.core import telemetry

FULL = dict(iterations=200_000, repeats=5)
SMOKE = dict(iterations=50_000, repeats=3)

#: a disabled span point must stay cheaper than this (generous: the
#: measured cost is ~100-300 ns on CI-class hardware, the bound only
#: exists to catch an accidental allocation / clock read on the off path)
DISABLED_BUDGET_NS = 2_000.0


def _ns_per_span(iterations: int, repeats: int) -> float:
    """Best-of-``repeats`` cost of one ``telemetry.span`` enter/exit."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iterations):
            with telemetry.span("bench.telemetry.point"):
                pass
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / iterations)
    return best * 1e9


def _ns_per_counter(iterations: int, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iterations):
            telemetry.counter_add("bench.telemetry.counter")
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / iterations)
    return best * 1e9


def run(smoke: bool = False) -> Dict[str, object]:
    p = SMOKE if smoke else FULL
    iterations, repeats = int(p["iterations"]), int(p["repeats"])

    # warm-up: touch the span point once in each state so bytecode and
    # attribute caches are hot before either variant is timed
    with telemetry.span("bench.telemetry.point"):
        pass

    assert not telemetry.enabled(), "tracing must be off for the benchmark"
    disabled_ns = _ns_per_span(iterations, repeats)
    disabled_counter_ns = _ns_per_counter(iterations, repeats)

    with telemetry.tracing(buffer_size=4096) as tracer:
        enabled_ns = _ns_per_span(iterations, repeats)
        enabled_counter_ns = _ns_per_counter(iterations, repeats)
        recorded = len(tracer.records())
        dropped = tracer.dropped

    return {
        "iterations": iterations,
        "repeats": repeats,
        "disabled_ns_per_span": disabled_ns,
        "enabled_ns_per_span": enabled_ns,
        "disabled_ns_per_counter": disabled_counter_ns,
        "enabled_ns_per_counter": enabled_counter_ns,
        "disabled_budget_ns": DISABLED_BUDGET_NS,
        # higher is better: disabled path staying cheap keeps this large
        "overhead_ratio_on_vs_off": enabled_ns / max(disabled_ns, 1e-9),
        "buffer_bounded": bool(recorded <= 4096),
        "spans_dropped_not_grown": int(dropped),
    }


def check_report(report: Dict[str, object]):
    """Hard failures for the perf runner's exit code."""
    errors = []
    disabled = float(report["disabled_ns_per_span"])
    if disabled > DISABLED_BUDGET_NS:
        errors.append(
            f"disabled span point costs {disabled:.0f} ns > "
            f"{DISABLED_BUDGET_NS:.0f} ns budget — the off fast path "
            "is allocating or reading the clock")
    if float(report["enabled_ns_per_span"]) <= 0:
        errors.append("enabled span cost measured as zero — timing broken")
    if not report["buffer_bounded"]:
        errors.append("trace buffer grew past its bound under load")
    return errors


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller iteration count, hard gates only (CI)")
    parser.add_argument("--output", default=None,
                        help="write the JSON section to this path")
    args = parser.parse_args(argv)

    report = run(smoke=args.quick)
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.output:
        Path(args.output).write_text(
            json.dumps({"telemetry": report}, indent=2, sort_keys=True) + "\n")
    errors = check_report(report)
    for error in errors:
        print(f"[bench_telemetry] ERROR: {error}", file=sys.stderr)
    if not errors:
        print(f"[bench_telemetry] ok: disabled span "
              f"{report['disabled_ns_per_span']:.0f} ns "
              f"(budget {DISABLED_BUDGET_NS:.0f} ns), enabled "
              f"{report['enabled_ns_per_span']:.0f} ns, on/off ratio "
              f"{report['overhead_ratio_on_vs_off']:.1f}x")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
