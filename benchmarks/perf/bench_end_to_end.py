"""End-to-end model compression wall-time: sequential vs parallel layer
clustering, float64 vs float32 compute policy.

Smoke mode compresses the repo's ResNet-18-mini; full mode compresses a
synthetic conv stack with ResNet-scale layer shapes (up to 512x512x3x3,
~half a million d=8 subvectors total) so the wall-time actually exercises
the clustering engine rather than benchmark overhead.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from benchmarks.perf._timing import best_of
from repro.core import LayerCompressionConfig, MVQCompressor, precision
from repro.nn import Conv2d, Sequential
from repro.nn.models import resnet18_mini

FULL = dict(k=128, d=8, iterations=10, workers=4, repeats=2)
SMOKE = dict(k=16, d=8, iterations=5, workers=2, repeats=1)

#: (in_channels, out_channels) of the full-mode synthetic stack; 3x3 kernels.
FULL_STAGES = ((64, 128), (128, 256), (256, 512), (512, 512))


def _scaled_convnet() -> Sequential:
    rng = np.random.default_rng(7)
    return Sequential(*(Conv2d(c_in, c_out, 3, padding=1, rng=rng)
                        for c_in, c_out in FULL_STAGES))


def _build_model(smoke: bool):
    if smoke:
        return resnet18_mini(num_classes=5, seed=1), "resnet18_mini"
    return _scaled_convnet(), "conv_stack_512"


def _compress(model, cfg: LayerCompressionConfig, workers=None,
              backend: str = "auto"):
    return MVQCompressor(cfg, workers=workers,
                         parallel_backend=backend).compress(model)


def _identical(a, b) -> bool:
    if set(a.layers) != set(b.layers):
        return False
    for name, la in a.layers.items():
        lb = b.layers[name]
        if not np.array_equal(la.assignments, lb.assignments):
            return False
        if not np.array_equal(la.codebook.codewords, lb.codebook.codewords):
            return False
        if not np.array_equal(la.mask, lb.mask):
            return False
    return True


def run(smoke: bool = False) -> Dict[str, object]:
    p = SMOKE if smoke else FULL
    # clustering cost does not depend on training, so random init weights
    # make the bench self-contained (no multi-second training phase)
    model, model_name = _build_model(smoke)
    cfg = LayerCompressionConfig(k=p["k"], d=p["d"],
                                 max_kmeans_iterations=p["iterations"])

    from repro.core import compressor as compressor_mod

    sequential_s = best_of(lambda: _compress(model, cfg), p["repeats"])
    parallel_s = best_of(lambda: _compress(model, cfg, workers=p["workers"]),
                         p["repeats"])
    with precision.precision("float32"):
        fp32_s = best_of(lambda: _compress(model, cfg), p["repeats"])

    seq = _compress(model, cfg)
    # the equivalence check must exercise the real pools even on hosts with
    # fewer CPUs than workers (where the cap would silently fall back to
    # the sequential path and verify nothing)
    results = {}
    original_cpus = compressor_mod._available_cpus
    compressor_mod._available_cpus = lambda: p["workers"]
    try:
        for backend in ("thread", "process"):
            par = _compress(model, cfg, workers=p["workers"], backend=backend)
            results[backend] = _identical(seq, par)
    finally:
        compressor_mod._available_cpus = original_cpus
    subvectors = sum(state.num_subvectors for state in seq)
    return {
        "workload": {"model": model_name,
                     "layers": len(seq),
                     "subvectors": subvectors,
                     "available_cpus": compressor_mod._available_cpus(),
                     **{key: p[key] for key in ("k", "d", "iterations", "workers")}},
        "sequential_fp64_s": sequential_s,
        "parallel_fp64_s": parallel_s,
        "sequential_fp32_s": fp32_s,
        "speedup_parallel": sequential_s / parallel_s,
        "speedup_fp32": sequential_s / fp32_s,
        "parallel_matches_sequential": all(results.values()),
        "parallel_matches_by_backend": results,
    }
