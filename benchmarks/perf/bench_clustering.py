"""Clustering throughput: optimised masked k-means vs the frozen seed path.

The headline workload is the acceptance-criteria one: 16384 subvectors of
d=8 under a 2:8 mask with k=256 codewords, a ResNet-scale layer.  Every
variant runs the same fixed number of Lloyd iterations
(``change_threshold=0``) so timings compare like with like.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from benchmarks.perf._legacy import legacy_masked_kmeans
from benchmarks.perf._timing import best_of
from repro.core import precision
from repro.core.kmeans import kmeans
from repro.core.masked_kmeans import masked_kmeans
from repro.core.pruning import nm_prune_mask

FULL = dict(n=16384, d=8, k=256, n_keep=2, m=8, iterations=15, repeats=3)
# large enough (and best-of-3) that the speedup-vs-legacy ratios are stable
# on a loaded CI runner — the perf-regression gate compares against them
SMOKE = dict(n=4096, d=8, k=64, n_keep=2, m=8, iterations=5, repeats=3)


def _workload(n: int, d: int, n_keep: int, m: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, d))
    mask = nm_prune_mask(data, n_keep, m)
    return data * mask, mask


def run(smoke: bool = False) -> Dict[str, object]:
    p = SMOKE if smoke else FULL
    data, mask = _workload(p["n"], p["d"], p["n_keep"], p["m"])
    k, iters, repeats = p["k"], p["iterations"], p["repeats"]
    rng = np.random.default_rng(0)
    init = data[rng.choice(data.shape[0], size=k, replace=False)].copy()

    def timed_masked(**kwargs):
        return best_of(
            lambda: masked_kmeans(data, mask, k, max_iterations=iters,
                                  change_threshold=0.0, init_codewords=init,
                                  **kwargs),
            repeats)

    legacy_s = best_of(
        lambda: legacy_masked_kmeans(data, mask, k, iters, init), repeats)
    masked_fp64_s = timed_masked()
    with precision.precision("float32"):
        masked_fp32_s = timed_masked()
    chunked_s = timed_masked(block_bytes=1 << 20)
    minibatch_s = timed_masked(minibatch=max(256, p["n"] // 8))
    plain_fp64_s = best_of(
        lambda: kmeans(data, k, max_iterations=iters, change_threshold=0.0,
                       init_codewords=init),
        repeats)
    kpp_s = best_of(
        lambda: masked_kmeans(data, mask, k, max_iterations=iters,
                              change_threshold=0.0, init="kmeans++"),
        1)

    subvectors = p["n"] * iters
    return {
        "workload": {key: p[key] for key in ("n", "d", "k", "n_keep", "m", "iterations")},
        "legacy_masked_fp64_s": legacy_s,
        "masked_fp64_s": masked_fp64_s,
        "masked_fp32_s": masked_fp32_s,
        "masked_fp64_chunked_1MiB_s": chunked_s,
        "masked_minibatch_s": minibatch_s,
        "masked_kmeanspp_s": kpp_s,
        "plain_fp64_s": plain_fp64_s,
        "speedup_fp64_vs_legacy": legacy_s / masked_fp64_s,
        "speedup_fp32_vs_legacy": legacy_s / masked_fp32_s,
        "assignments_per_s_fp64": subvectors / masked_fp64_s,
        "assignments_per_s_fp32": subvectors / masked_fp32_s,
    }
