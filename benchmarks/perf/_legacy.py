"""Frozen copy of the seed (pre-optimisation) clustering hot loops.

This is the ``np.add.at`` / full-distance-matrix implementation the repo
shipped with, kept verbatim so the perf suite can report a stable
before/after speedup for the optimised kernels in
:mod:`repro.core.masked_kmeans`.  Not used by the library itself.
"""

from __future__ import annotations

import numpy as np


def legacy_masked_assign(data: np.ndarray, mask: np.ndarray,
                         codewords: np.ndarray) -> np.ndarray:
    cross = data @ codewords.T                     # (N_G, k)
    masked_c_norm = mask @ (codewords**2).T        # (N_G, k)
    return np.argmin(masked_c_norm - 2.0 * cross, axis=1)


def legacy_masked_update(data: np.ndarray, mask: np.ndarray, assignments: np.ndarray,
                         k: int, previous: np.ndarray) -> np.ndarray:
    d = data.shape[1]
    sums = np.zeros((k, d))
    counts = np.zeros((k, d))
    np.add.at(sums, assignments, data)
    np.add.at(counts, assignments, mask.astype(float))
    updated = np.where(counts > 0, sums / np.maximum(counts, 1.0), previous)
    return updated


def legacy_masked_kmeans(data: np.ndarray, mask: np.ndarray, k: int,
                         max_iterations: int, init_codewords: np.ndarray,
                         change_threshold: float = 0.0):
    """The seed Lloyd loop (float64, unfused assignment, scatter-add update)."""
    data = np.asarray(data, dtype=np.float64) * mask
    codewords = np.array(init_codewords, dtype=np.float64, copy=True)
    assignments = legacy_masked_assign(data, mask, codewords)
    for _ in range(max_iterations):
        codewords = legacy_masked_update(data, mask, assignments, k, codewords)
        new_assignments = legacy_masked_assign(data, mask, codewords)
        changed = np.count_nonzero(new_assignments != assignments)
        assignments = new_assignments
        if changed <= change_threshold * data.shape[0]:
            break
    residual = (data - codewords[assignments]) * mask
    return codewords, assignments, float(np.sum(residual**2))


def legacy_im2col(x: np.ndarray, kernel, stride: int, padding: int) -> np.ndarray:
    """The seed im2col: one strided-slice copy per kernel tap (kh*kw loop
    iterations) before the layout transpose, replaced by the single
    ``sliding_window_view`` copy in :func:`repro.nn.functional.im2col`."""
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1

    if padding > 0:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
        )

    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_max:stride, j:j_max:stride]

    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1)


def legacy_conv2d_forward(x: np.ndarray, weight: np.ndarray, bias, stride: int,
                          padding: int):
    """Conv forward on the loop-based im2col (GEMM unchanged)."""
    n, _, h, w = x.shape
    c_out, _, kh, kw = weight.shape
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    cols = legacy_im2col(x, (kh, kw), stride, padding)
    out = cols @ weight.reshape(c_out, -1).T
    if bias is not None:
        out += bias
    return out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2), cols
