"""Dynamic-batching serving throughput vs sequential single-image serving.

The synthetic load generator drives the ``repro.serve`` model server the
way CI and the README quote it: a compressed ResNet-18-mini is served
twice over the same request stream —

* **sequential** — the no-server baseline: one ``model.forward`` per
  request at batch shape 1, the latency-serving lower bound every
  per-call overhead (Python layer dispatch, im2col setup, kernel launch
  bookkeeping) is paid per image;
* **dynamically batched** — requests are enqueued through the
  :class:`~repro.serve.server.ModelServer` and coalesced by the
  max-batch/max-wait policy, so those per-call costs amortise across the
  batch.

Alongside throughput the bench records the server's p50/p95 latency, the
batch-size histogram (was the batcher actually coalescing?), and two
bit-equality guards: server outputs must equal
:func:`repro.nn.serve.predict_batched` on the stacked stream *and* a
request served alone must reproduce the coalesced result bit-for-bit
(the canonical padded-shape property).

Runnable standalone for CI gating::

    PYTHONPATH=src python -m benchmarks.perf.bench_serving --quick

exits non-zero when dynamic batching drops below 1.5x sequential serving
or either bit-equality guard fails.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Dict

if __package__ in (None, ""):  # running as a plain script
    _root = Path(__file__).resolve().parents[2]
    for entry in (_root, _root / "src"):
        if str(entry) not in sys.path:
            sys.path.insert(0, str(entry))

import numpy as np

from repro.core import LayerCompressionConfig, MVQCompressor
from repro.nn import predict_batched, prepare_for_serving
from repro.nn.compressed import swap_to_compressed
from repro.nn.models import resnet18_mini
from repro.serve import (
    BatchPolicy,
    FaultPolicy,
    ModelServer,
    ServingError,
    serving_chaos_plan,
)

INPUT_SHAPE = (3, 16, 16)

FULL = dict(num_requests=256, max_batch=16, max_wait_ms=5.0,
            k=24, iterations=8, repeats=3)
QUICK = dict(num_requests=64, max_batch=8, max_wait_ms=5.0,
             k=16, iterations=4, repeats=2)

#: chaos-mode knobs (``--chaos``): ~10% of replica forwards fault (split
#: across crashes / engine faults / delays, see serving_chaos_plan); the
#: seed makes every run inject the identical fault sequence
FAULT_RATE = 0.10
FAULT_SEED = 7


def _compress_model(p: Dict[str, object], count: int = 2):
    """One compressed ResNet-18 plus ``count`` thread-serving replicas of it."""
    cfg = LayerCompressionConfig(k=p["k"], d=8,
                                 max_kmeans_iterations=p["iterations"])
    base = resnet18_mini(num_classes=5, seed=1)
    compressed = MVQCompressor(cfg).compress(base)
    replicas = []
    for _ in range(count):
        replica = resnet18_mini(num_classes=5, seed=1)
        swap_to_compressed(replica, compressed, mode="auto")
        replica.eval()
        replicas.append(replica)
    return compressed, replicas


def _compressed_replicas(p: Dict[str, object], count: int = 2):
    """``count`` independent serving replicas of one compressed ResNet-18."""
    return _compress_model(p, count)[1]


def run(smoke: bool = False) -> Dict[str, object]:
    p = QUICK if smoke else FULL
    n, max_batch = p["num_requests"], p["max_batch"]
    seq_model, srv_model = _compressed_replicas(p)

    rng = np.random.default_rng(0)
    requests = rng.standard_normal((n, *INPUT_SHAPE))

    # -- sequential single-image serving (each model pinned at its own
    #    canonical shape, so neither path pays auto re-selection per call)
    prepare_for_serving(seq_model, INPUT_SHAPE, batch_size=1)

    def sequential_pass():
        return np.stack([np.asarray(seq_model.forward(requests[i:i + 1]))[0]
                         for i in range(n)])

    sequential_pass()  # warm
    best_seq = float("inf")
    for _ in range(p["repeats"]):
        start = time.perf_counter()
        seq_out = sequential_pass()
        best_seq = min(best_seq, time.perf_counter() - start)

    # -- dynamic batching through the model server
    policy = BatchPolicy(max_batch_size=max_batch, max_wait_ms=p["max_wait_ms"],
                         max_queue_size=max(2 * n, 64), overload="shed")
    server = ModelServer()
    server.register("resnet18", srv_model, policy=policy,
                    input_shape=INPUT_SHAPE)
    with server:
        server.predict_many("resnet18", requests[:max_batch])  # warm
        best_batched = float("inf")
        for _ in range(p["repeats"]):
            start = time.perf_counter()
            batched_out = server.predict_many("resnet18", requests)
            best_batched = min(best_batched, time.perf_counter() - start)
        # bit-equality guard 2: a request served alone (batch of 1, padded
        # to the same canonical shape) must reproduce the coalesced bits
        solo = np.stack([server.predict("resnet18", requests[i])
                         for i in range(min(4, n))])
        stats = server.stats_report()["models"]["resnet18"]

    # bit-equality guard 1: the server's dynamic batches vs the library's
    # fixed-size batched inference over the identical stream
    # (the reference runs on srv_model: seq_model is pinned for batch-1
    # serving, while the claim is about the server's canonical shape)
    reference = predict_batched(srv_model, requests, batch_size=max_batch)

    return {
        "workload": {"model": "resnet18_mini", "input_shape": list(INPUT_SHAPE),
                     "num_requests": n, "k": p["k"],
                     "max_batch_size": max_batch,
                     "max_wait_ms": p["max_wait_ms"]},
        "sequential_s": best_seq,
        "sequential_sps": n / best_seq,
        "batched_s": best_batched,
        "batched_sps": n / best_batched,
        "speedup_batched_vs_sequential": best_seq / best_batched,
        "latency_ms_p50": stats["latency_ms"]["p50"],
        "latency_ms_p95": stats["latency_ms"]["p95"],
        "mean_batch_size": stats["mean_batch_size"],
        "batch_size_histogram": stats["batch_size_histogram"],
        "requests_completed": stats["requests_completed"],
        "batched_bit_identical_to_library": bool(
            np.array_equal(batched_out, reference)),
        "solo_bit_identical_to_batched": bool(
            np.array_equal(solo, batched_out[:solo.shape[0]])),
        "max_abs_diff_batched_vs_sequential": float(
            np.max(np.abs(batched_out - seq_out))),
    }


def run_fault_mode(smoke: bool = False) -> Dict[str, object]:
    """The same request stream under ~10% injected replica faults.

    Two replicas with the full failure-handling stack (retries, quarantine
    + re-warm, engine-fault degradation) serve the stream while the seeded
    chaos plan fires crashes, engine faults and delays.  Records throughput
    and p95 under fault along with the resolution census the chaos gate
    checks: every request resolves, every success is bit-identical to the
    clean reference.
    """
    p = QUICK if smoke else FULL
    n, max_batch = p["num_requests"], p["max_batch"]
    replicas = _compressed_replicas(p, count=3)
    ref_model, serve_replicas = replicas[0], replicas[1:]

    rng = np.random.default_rng(0)
    requests = rng.standard_normal((n, *INPUT_SHAPE))
    reference = predict_batched(ref_model, requests, batch_size=max_batch)

    policy = BatchPolicy(max_batch_size=max_batch, max_wait_ms=p["max_wait_ms"],
                         max_queue_size=max(2 * n, 64), overload="shed")
    fault_policy = FaultPolicy(max_retries=4, backoff_initial_ms=1.0,
                               quarantine_after=3, rewarm_after_ms=20.0)
    server = ModelServer()
    server.register("resnet18", serve_replicas, policy=policy,
                    fault_policy=fault_policy, input_shape=INPUT_SHAPE)
    plan = serving_chaos_plan(FAULT_RATE, seed=FAULT_SEED)
    ok = mismatched = typed_errors = unresolved = 0
    with plan.active(), server:
        start = time.perf_counter()
        handles = [server.submit("resnet18", row) for row in requests]
        for i, handle in enumerate(handles):
            try:
                out = handle.result(timeout=120.0)
            except ServingError:
                typed_errors += 1       # resolved: a typed error, not a hang
            except TimeoutError:
                unresolved += 1         # the wait itself timed out: a hang
            else:
                ok += 1
                if not np.array_equal(out, reference[i]):
                    mismatched += 1
        elapsed = time.perf_counter() - start
        stats = server.stats_report()["models"]["resnet18"]

    return {
        "fault_rate": FAULT_RATE,
        "fault_seed": FAULT_SEED,
        "num_requests": n,
        "throughput_rps": n / elapsed,
        "latency_ms_p50": stats["latency_ms"]["p50"],
        "latency_ms_p95": stats["latency_ms"]["p95"],
        "requests_ok": ok,
        "requests_typed_error": typed_errors,
        "requests_unresolved": unresolved,
        "successes_bit_identical": mismatched == 0,
        "injections": sum(plan.summary()["injections"].values()),
        "faults": stats["faults"],
    }


def check_fault_report(report: Dict[str, object]) -> list:
    """The chaos gate: no hangs, bit-exact successes, faults actually fired."""
    errors = []
    if report["requests_unresolved"]:
        errors.append(f"{report['requests_unresolved']} requests never "
                      "resolved under fault injection (hang)")
    if not report["successes_bit_identical"]:
        errors.append("successful responses under fault injection diverge "
                      "from the clean reference bits")
    if not report["requests_ok"]:
        errors.append("no request succeeded under fault injection")
    if not report["injections"]:
        errors.append("the chaos plan injected nothing — the chaos gate "
                      "tested a fault-free run")
    return errors


#: process workers per sharded pool (and thread replicas in its baseline)
SHARDED_WORKERS = 2


def run_sharded(smoke: bool = False) -> Dict[str, object]:
    """Sharded process workers vs thread replicas over one shared model.

    The same compressed model is served two ways under the identical
    closed-loop stream: ``SHARDED_WORKERS`` thread replicas sharing state
    by reference, then a :class:`~repro.serve.sharded.ProcessReplicaPool`
    whose workers map one shared-memory arena zero-copy.  Alongside the
    closed-loop speedup the process tier serves an **open-loop Poisson
    trace** (seeded arrivals at ~70% of its measured throughput) for
    p50/p95/p99 under realistic arrival jitter, and reports per-worker RSS
    plus the arena accounting (``compressed_state_private_bytes`` must be
    zero — the zero-copy claim, gated in CI on any host).
    """
    import os

    from repro.core.telemetry import quantile
    from repro.serve import ProcessReplicaPool

    p = QUICK if smoke else FULL
    n, max_batch = p["num_requests"], p["max_batch"]
    workers = SHARDED_WORKERS
    compressed, thread_replicas = _compress_model(p, count=workers)

    rng = np.random.default_rng(0)
    requests = rng.standard_normal((n, *INPUT_SHAPE))
    policy = BatchPolicy(max_batch_size=max_batch, max_wait_ms=p["max_wait_ms"],
                         max_queue_size=max(2 * n, 64), overload="shed")
    reference = predict_batched(thread_replicas[0], requests,
                                batch_size=max_batch)

    # -- thread-replica baseline (state deduplicated by reference)
    thread_server = ModelServer()
    thread_server.register("resnet18", thread_replicas, policy=policy,
                           input_shape=INPUT_SHAPE)
    with thread_server:
        thread_server.predict_many("resnet18", requests[:max_batch])  # warm
        best_thread = float("inf")
        for _ in range(p["repeats"]):
            start = time.perf_counter()
            thread_out = thread_server.predict_many("resnet18", requests)
            best_thread = min(best_thread, time.perf_counter() - start)

    # -- sharded process workers over the shared-memory arena
    pool = ProcessReplicaPool(
        compressed, ("factory", resnet18_mini, {"num_classes": 5, "seed": 1}),
        INPUT_SHAPE, workers=workers, mode="auto", max_batch_size=max_batch)
    try:
        process_server = ModelServer()
        pool.register_with(process_server, "resnet18", policy=policy)
        with process_server:
            process_server.predict_many("resnet18", requests[:max_batch])
            best_process = float("inf")
            for _ in range(p["repeats"]):
                start = time.perf_counter()
                process_out = process_server.predict_many("resnet18", requests)
                best_process = min(best_process,
                                   time.perf_counter() - start)

            # open-loop Poisson trace at ~70% of the measured throughput
            offered_rps = 0.7 * (n / best_process)
            gaps = np.random.default_rng(1).exponential(1.0 / offered_rps,
                                                        size=n)
            handles = []
            start = time.perf_counter()
            for i in range(n):
                time.sleep(gaps[i])
                handles.append(process_server.submit("resnet18", requests[i]))
            trace_out = np.stack([h.result(timeout=120.0) for h in handles])
            trace_elapsed = time.perf_counter() - start
            latencies = [h.latency_s for h in handles]
            info = pool.info()
    finally:
        pool.close()

    worker_reports = [w for w in info["workers"] if "error" not in w]
    return {
        "workload": {"model": "resnet18_mini",
                     "input_shape": list(INPUT_SHAPE),
                     "num_requests": n, "k": p["k"],
                     "max_batch_size": max_batch,
                     "max_wait_ms": p["max_wait_ms"]},
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "smoke": bool(smoke),
        "thread_s": best_thread,
        "thread_sps": n / best_thread,
        "process_s": best_process,
        "process_sps": n / best_process,
        "speedup_process_vs_thread": best_thread / best_process,
        "process_bit_identical_to_thread": bool(
            np.array_equal(process_out, thread_out)),
        "process_bit_identical_to_library": bool(
            np.array_equal(process_out, reference)),
        "open_loop": {
            "offered_rps": offered_rps,
            "achieved_rps": n / trace_elapsed,
            "latency_ms": {"p50": quantile(latencies, 0.50) * 1e3,
                           "p95": quantile(latencies, 0.95) * 1e3,
                           "p99": quantile(latencies, 0.99) * 1e3},
            "bit_identical": bool(np.array_equal(trace_out, reference)),
        },
        "arena_nbytes": info["arena"]["nbytes"],
        "per_worker_rss_bytes": [w.get("rss_bytes") for w in worker_reports],
        "per_worker_arena_shared_bytes": [
            w.get("arena_shared_bytes") for w in worker_reports],
        "compressed_state_private_bytes": sum(
            w.get("private_state_bytes", 0) for w in worker_reports),
        "workers_reporting": len(worker_reports),
        "respawns": info["respawns"],
    }


def run_sharded_chaos(smoke: bool = False) -> Dict[str, object]:
    """SIGKILL a sharded worker mid-load: re-spawn, zero hangs, exact bits.

    One of the pool's worker processes is killed (the real signal, not an
    injected exception) while the request stream is in flight.  The gate
    demands every request resolves (success or typed error — never a hang),
    every success is bit-identical to the clean reference, and the dead
    worker was re-spawned and re-attached to the arena.
    """
    from repro.serve import ProcessReplicaPool

    p = QUICK if smoke else FULL
    n, max_batch = p["num_requests"], p["max_batch"]
    compressed, refs = _compress_model(p, count=1)

    rng = np.random.default_rng(0)
    requests = rng.standard_normal((n, *INPUT_SHAPE))
    reference = predict_batched(refs[0], requests, batch_size=max_batch)

    policy = BatchPolicy(max_batch_size=max_batch, max_wait_ms=p["max_wait_ms"],
                         max_queue_size=max(2 * n, 64), overload="shed")
    fault_policy = FaultPolicy(max_retries=4, backoff_initial_ms=1.0,
                               quarantine_after=3, rewarm_after_ms=20.0)
    pool = ProcessReplicaPool(
        compressed, ("factory", resnet18_mini, {"num_classes": 5, "seed": 1}),
        INPUT_SHAPE, workers=SHARDED_WORKERS, mode="auto",
        max_batch_size=max_batch)
    ok = mismatched = typed_errors = unresolved = 0
    try:
        server = ModelServer()
        pool.register_with(server, "resnet18", policy=policy,
                           fault_policy=fault_policy)
        with server:
            server.predict_many("resnet18", requests[:2])  # warm
            start = time.perf_counter()
            handles = [server.submit("resnet18", row) for row in requests]
            time.sleep(0.02)            # let batches reach the workers ...
            pool.replicas[0].kill()     # ... then SIGKILL one mid-flight
            for i, handle in enumerate(handles):
                try:
                    out = handle.result(timeout=120.0)
                except ServingError:
                    typed_errors += 1   # resolved: a typed error, not a hang
                except TimeoutError:
                    unresolved += 1     # the wait itself timed out: a hang
                else:
                    ok += 1
                    if not np.array_equal(out, reference[i]):
                        mismatched += 1
            elapsed = time.perf_counter() - start
            # attribute read only — pool.info() would itself re-spawn
            respawns = sum(r.respawns for r in pool.replicas)
    finally:
        pool.close()

    return {
        "num_requests": n,
        "workers": SHARDED_WORKERS,
        "throughput_rps": n / elapsed,
        "requests_ok": ok,
        "requests_typed_error": typed_errors,
        "requests_unresolved": unresolved,
        "successes_bit_identical": mismatched == 0,
        "respawns": respawns,
    }


#: CI gates on the sharded tier: the closed-loop process-vs-thread speedup
#: is only meaningful with real parallelism, so it is gated on >= 2 CPUs;
#: bit-exactness and zero-copy accounting are gated unconditionally
MIN_SHARDED_SPEEDUP = 2.0
MIN_SHARDED_SPEEDUP_SMOKE = 1.3


def check_sharded_report(report: Dict[str, object]) -> list:
    """Gate one :func:`run_sharded` report; returns error strings."""
    errors = []
    if not report["process_bit_identical_to_thread"]:
        errors.append("process-worker outputs diverge from thread-replica "
                      "outputs on the same stream")
    if not report["process_bit_identical_to_library"]:
        errors.append("process-worker outputs diverge from predict_batched "
                      "on the same stream")
    if not report["open_loop"]["bit_identical"]:
        errors.append("open-loop trace outputs diverge from the reference")
    if not report["workers_reporting"]:
        errors.append("no sharded worker returned its memory report")
    if report["compressed_state_private_bytes"]:
        errors.append(f"{report['compressed_state_private_bytes']} bytes of "
                      "model state are private to workers — the zero-copy "
                      "shared-arena claim is violated")
    cpus = report.get("cpu_count") or 1
    if cpus >= 2:
        minimum = (MIN_SHARDED_SPEEDUP_SMOKE if report["smoke"]
                   else MIN_SHARDED_SPEEDUP)
        speedup = report["speedup_process_vs_thread"]
        if speedup < minimum:
            errors.append(f"sharded process serving is {speedup:.2f}x thread "
                          f"serving on a {cpus}-CPU host "
                          f"(minimum {minimum}x)")
    return errors


def check_sharded_chaos_report(report: Dict[str, object]) -> list:
    """The sharded chaos gate: re-spawn happened, no hangs, exact bits."""
    errors = []
    if report["requests_unresolved"]:
        errors.append(f"{report['requests_unresolved']} requests never "
                      "resolved after the worker SIGKILL (hang)")
    if not report["successes_bit_identical"]:
        errors.append("successful responses after the worker SIGKILL "
                      "diverge from the clean reference bits")
    if not report["requests_ok"]:
        errors.append("no request succeeded after the worker SIGKILL")
    if not report["respawns"]:
        errors.append("the SIGKILL'd worker was never re-spawned")
    return errors


#: CI gate: dynamic batching must beat sequential single-image serving
MIN_SPEEDUP = 1.5


def check_report(report: Dict[str, object]) -> list:
    """Gate conditions on one :func:`run` report; returns error strings."""
    errors = []
    if not report["batched_bit_identical_to_library"]:
        errors.append("dynamically batched outputs diverge from "
                      "predict_batched on the same stream")
    if not report["solo_bit_identical_to_batched"]:
        errors.append("a request served alone diverges from its coalesced "
                      "result (canonical-shape property violated)")
    speedup = report["speedup_batched_vs_sequential"]
    if speedup < MIN_SPEEDUP:
        errors.append(f"dynamic batching is {speedup:.2f}x sequential serving "
                      f"(minimum {MIN_SPEEDUP}x)")
    return errors


def main(argv=None) -> int:
    args = list(argv if argv is not None else sys.argv[1:])
    quick = "--quick" in args
    chaos = "--chaos" in args
    sharded = "--sharded" in args
    output = None
    if "--output" in args:
        output = args[args.index("--output") + 1]
    report = run(smoke=quick)
    print(f"[perf] serving: dynamic batching {report['batched_sps']:.0f} req/s "
          f"vs sequential {report['sequential_sps']:.0f} req/s "
          f"({report['speedup_batched_vs_sequential']:.2f}x), "
          f"p95 {report['latency_ms_p95']:.1f} ms, "
          f"mean batch {report['mean_batch_size']:.1f}")
    errors = check_report(report)
    if chaos:
        fault_report = run_fault_mode(smoke=quick)
        # nested under the serving section; compare_perf deliberately does
        # NOT track fault-mode ratios (retry/backoff sleeps dominate the
        # wall time, making them far too noisy to gate on)
        report["fault_mode"] = fault_report
        print(f"[perf] serving under {FAULT_RATE:.0%} faults: "
              f"{fault_report['throughput_rps']:.0f} req/s, "
              f"p95 {fault_report['latency_ms_p95']:.1f} ms, "
              f"{fault_report['requests_ok']} ok / "
              f"{fault_report['requests_typed_error']} typed errors / "
              f"{fault_report['requests_unresolved']} unresolved "
              f"({fault_report['injections']} injections)")
        errors += check_fault_report(fault_report)
    if sharded:
        sharded_report = run_sharded(smoke=quick)
        report["sharded"] = sharded_report
        open_loop = sharded_report["open_loop"]
        print(f"[perf] sharded serving: {sharded_report['workers']} process "
              f"workers {sharded_report['process_sps']:.0f} req/s vs thread "
              f"{sharded_report['thread_sps']:.0f} req/s "
              f"({sharded_report['speedup_process_vs_thread']:.2f}x on "
              f"{sharded_report['cpu_count']} CPUs); open-loop "
              f"p50 {open_loop['latency_ms']['p50']:.1f} / "
              f"p99 {open_loop['latency_ms']['p99']:.1f} ms at "
              f"{open_loop['offered_rps']:.0f} req/s offered; arena "
              f"{sharded_report['arena_nbytes'] / 1024:.0f} KiB shared, "
              f"{sharded_report['compressed_state_private_bytes']} B private")
        errors += check_sharded_report(sharded_report)
        if chaos:
            sharded_chaos = run_sharded_chaos(smoke=quick)
            sharded_report["chaos"] = sharded_chaos
            print(f"[perf] sharded chaos (worker SIGKILL mid-load): "
                  f"{sharded_chaos['requests_ok']} ok / "
                  f"{sharded_chaos['requests_typed_error']} typed errors / "
                  f"{sharded_chaos['requests_unresolved']} unresolved, "
                  f"{sharded_chaos['respawns']} re-spawn(s)")
            errors += check_sharded_chaos_report(sharded_chaos)
    if output:
        Path(output).write_text(
            json.dumps({"mode": "smoke" if quick else "full",
                        "serving": report}, indent=2, sort_keys=True) + "\n")
    for error in errors:
        print(f"[perf] ERROR: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
