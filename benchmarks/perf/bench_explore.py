"""Design-space exploration throughput: parallel fan-out + cache reuse.

Runs one small random search three ways and reports the two scale-free
ratios the perf gate tracks:

* ``speedup_parallel_vs_sequential`` — the same sweep with the evaluator's
  thread pool vs one worker (1.0 on single-CPU hosts, where the pool is
  capped to the CPUs actually available);
* ``cache_speedup`` — the sweep re-run against its own warm artifact store:
  zero re-clustering, so the ratio is the clustering share of the sweep.

Hard correctness gates ride along: the frontier must be non-empty, the
sweep must reuse cluster results across neighboring candidates (>= 1
cache hit), the parallel run must produce objective-identical results to
the sequential one, and the warm re-run must cluster nothing.

``--quick`` runs the smoke-sized search standalone and exits non-zero on
any hard-gate failure (the CI ``explore-smoke`` job).
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict

if __package__ in (None, ""):  # running as a plain script
    _root = Path(__file__).resolve().parents[2]
    for entry in (_root, _root / "src"):
        if str(entry) not in sys.path:
            sys.path.insert(0, str(entry))

from repro.explore import SearchSpace, explore
from repro.pipeline.artifacts import ArtifactStore

FULL = dict(k=48, iterations=12, budget=8, serve_samples=8)
SMOKE = dict(k=12, iterations=5, budget=6, serve_samples=4)


def _space(p: Dict[str, int]) -> SearchSpace:
    """8-point grid: 4 clustering signatures x 2 accelerator variants, so a
    cold sweep already reuses cluster results across neighbors."""
    return SearchSpace.from_dict({
        "name": "bench-explore",
        "model": "resnet18",
        "model_kwargs": {"num_classes": 5, "seed": 1},
        "workload": "resnet18",
        "strategy": "random",
        "budget": p["budget"],
        "pipeline": {
            "preset": "mvq",
            "base": {"k": p["k"], "max_kmeans_iterations": p["iterations"]},
            "stages": ["group", "prune", "cluster", "quantize", "serve_eval",
                       "accel_eval"],
            "serve": {"batch_size": 4, "num_samples": p["serve_samples"]},
            "data": {"num_samples": 32, "image_size": 16, "num_classes": 5},
            "accelerator": {"setting": "EWS-CMS", "array_size": 64},
        },
        "axes": [
            {"path": "base.k", "values": [p["k"], p["k"] + p["k"] // 2]},
            {"pattern": "stem.*", "field": "n_keep", "values": [2, 4]},
            {"path": "accelerator.array_size", "values": [32, 64]},
        ],
    })


def _objective_table(result) -> Dict[int, Dict[str, float]]:
    return {r.candidate.index: r.objectives for r in result.ok_results}


def run(smoke: bool = False) -> Dict[str, object]:
    p = SMOKE if smoke else FULL
    space = _space(p)
    # smoke sweeps finish in ~0.3s, where shared-runner noise swamps single
    # samples — report the best of three (matching the other smoke benches)
    repeats = 3 if smoke else 1

    cold_runs = []
    for _ in range(repeats):
        store = ArtifactStore()
        cold_runs.append((explore(space, store=store, workers=1), store))
    cold, store = min(cold_runs, key=lambda rs: rs[0].stats["seconds"])
    warm_runs = [explore(space, store=store, workers=1)
                 for _ in range(repeats)]
    warm = min(warm_runs, key=lambda r: r.stats["seconds"])
    parallel_runs = [explore(space, store=ArtifactStore(), workers=None)
                     for _ in range(repeats)]
    parallel = min(parallel_runs, key=lambda r: r.stats["seconds"])

    cold_s = cold.stats["seconds"]
    warm_s = warm.stats["seconds"]
    parallel_s = parallel.stats["seconds"]
    return {
        "workload": {"model": "resnet18", "budget": p["budget"],
                     "grid_size": space.grid_size, "k": p["k"],
                     "iterations": p["iterations"]},
        "workers_parallel": parallel.stats["workers"],
        "sequential_seconds": cold_s,
        "parallel_seconds": parallel_s,
        "speedup_parallel_vs_sequential": cold_s / max(parallel_s, 1e-12),
        "warm_seconds": warm_s,
        "cache_speedup": cold_s / max(warm_s, 1e-12),
        "candidates": cold.stats["candidates"],
        "frontier_size": cold.stats["frontier_size"],
        "cold_cluster_layers_cached": cold.stats["cluster_layers_cached"],
        "cold_cluster_layers_fresh": cold.stats["cluster_layers_fresh"],
        "warm_cluster_layers_fresh": warm.stats["cluster_layers_fresh"],
        "parallel_matches_sequential": (
            _objective_table(cold) == _objective_table(parallel)),
        "warm_matches_cold": _objective_table(cold) == _objective_table(warm),
    }


def check_report(report: Dict[str, object]):
    """Hard failures for the perf runner's exit code."""
    errors = []
    if not report["frontier_size"]:
        errors.append("exploration produced an empty Pareto frontier")
    if int(report["cold_cluster_layers_cached"]) < 1:
        errors.append("cold sweep reused no cluster results across "
                      "neighboring candidates")
    if int(report["warm_cluster_layers_fresh"]) != 0:
        errors.append("warm re-run of the sweep re-clustered layers")
    if not report["parallel_matches_sequential"]:
        errors.append("parallel sweep diverged from sequential results")
    if not report["warm_matches_cold"]:
        errors.append("warm-cache sweep diverged from cold results")
    return errors


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smoke-sized search, hard gates only (CI)")
    parser.add_argument("--output", default=None,
                        help="write the JSON section to this path")
    args = parser.parse_args(argv)

    report = run(smoke=args.quick)
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.output:
        Path(args.output).write_text(
            json.dumps({"explore": report}, indent=2, sort_keys=True) + "\n")
    errors = check_report(report)
    for error in errors:
        print(f"[bench_explore] ERROR: {error}", file=sys.stderr)
    if not errors:
        print(f"[bench_explore] ok: frontier {report['frontier_size']} points, "
              f"{report['cold_cluster_layers_cached']} cluster results reused, "
              f"parallel {report['speedup_parallel_vs_sequential']:.2f}x, "
              f"warm cache {report['cache_speedup']:.2f}x")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
