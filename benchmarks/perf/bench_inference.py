"""Compressed-domain inference throughput and the vectorized tile streams.

Two claims are tracked here:

* **Decode-free serving** — forwarding a compressed conv stack directly
  from ``(codebook, assignments, mask)`` (cost-model ``auto`` mode) versus
  the decode-every-call baseline that reconstructs each layer's dense
  weight before every convolution.  The reference workload uses
  ResNet-stage shapes up to 512x512x3x3 at single-image spatial sizes —
  the latency-serving regime where per-call weight decode dominates.
* **Batched tile simulation** — ``compute_stream`` on whole
  activation × subvector arrays versus the scalar per-PE tile loop, with
  identical gating counts (the Table-7 equivalence property).

Runnable standalone for CI gating::

    PYTHONPATH=src python -m benchmarks.perf.bench_inference --quick

exits non-zero when the compressed-domain forward drops below 0.8x the
dense-reconstruct baseline on the reference workload.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Dict

if __package__ in (None, ""):  # running as a plain script
    _root = Path(__file__).resolve().parents[2]
    for entry in (_root, _root / "src"):
        if str(entry) not in sys.path:
            sys.path.insert(0, str(entry))

import numpy as np

from benchmarks.perf._timing import best_of
from repro.core import LayerCompressionConfig, MVQCompressor
from repro.nn import Conv2d, Sequential, predict_batched
from repro.nn import functional as F
from repro.accelerator.systolic import (
    DenseTile,
    SparseTile,
    stream_gating_stats,
)
from repro.core.pruning import nm_prune_mask

#: (in_channels, out_channels) of the conv-stack workload; 3x3 kernels.
STAGES = ((64, 128), (128, 256), (256, 512), (512, 512))

#: single-image latency serving at the 7x7 spatial size of ResNet's late
#: stages — the regime where per-call weight decode dominates the conv work
FULL = dict(k=256, d=8, iterations=12, batch=1, hw=7, serve_calls=8,
            stream_subvectors=384, stream_acts=96, stream_d=16, stream_q=4,
            repeats=5, scalar_repeats=1)
QUICK = dict(k=32, d=8, iterations=4, batch=1, hw=7, serve_calls=3,
             stream_subvectors=48, stream_acts=24, stream_d=16, stream_q=4,
             repeats=2, scalar_repeats=3)


def _conv_stack(stages=STAGES) -> Sequential:
    rng = np.random.default_rng(7)
    return Sequential(*(Conv2d(c_in, c_out, 3, padding=1, rng=rng)
                        for c_in, c_out in stages))


def _reconstruct_forward(states, x: np.ndarray) -> np.ndarray:
    """The decode-every-call baseline: dense-reconstruct-then-conv."""
    for state in states:
        weight = state.reconstruct_weight()
        x, _ = F.conv2d_forward(x, weight, None, stride=1, padding=1)
    return x


def _compressed_workload(p: Dict[str, object]) -> Dict[str, object]:
    model = _conv_stack()
    cfg = LayerCompressionConfig(k=p["k"], d=p["d"],
                                 max_kmeans_iterations=p["iterations"])
    compressor = MVQCompressor(cfg)
    compressed = compressor.export_compressed_model(model)
    states = list(compressed.layers.values())
    model.eval()

    rng = np.random.default_rng(0)
    x = rng.normal(size=(p["batch"], STAGES[0][0], p["hw"], p["hw"]))

    baseline_s = best_of(lambda: _reconstruct_forward(states, x), p["repeats"])
    compressed_s = best_of(lambda: model.forward(x), p["repeats"])

    # mode-forced timings for transparency: what auto chose between
    for mod in model:
        mod.engine.mode = "dense"
    dense_cached_s = best_of(lambda: model.forward(x), p["repeats"])
    for mod in model:
        mod.engine.mode = "centroid"
    centroid_s = best_of(lambda: model.forward(x), p["repeats"])
    centroid_out = model.forward(x)

    # the integer/LUT fast path: precomputed routing tables, gather/
    # scatter-accumulate inner loop.  Exact LUT must be bit-identical to
    # the centroid path; lut_quant trades a bounded activation-snap error
    # for cheaper accumulation.
    for mod in model:
        mod.engine.mode = "lut"
    lut_s = best_of(lambda: model.forward(x), p["repeats"])
    lut_bit_identical = bool(np.array_equal(model.forward(x), centroid_out))
    lut_table_bytes = int(sum(mod.engine.lut_table_bytes() for mod in model))
    for mod in model:
        mod.engine.mode = "lut_quant"
    lut_quant_s = best_of(lambda: model.forward(x), p["repeats"])
    quant_out = model.forward(x)
    lut_quant_rel_err = (float(np.linalg.norm(quant_out - centroid_out))
                         / max(float(np.linalg.norm(centroid_out)), 1e-12))
    for mod in model:
        mod.engine.mode = "auto"

    # equivalence guard: the timed path must produce the baseline's numbers
    max_err = float(np.max(np.abs(model.forward(x) - _reconstruct_forward(states, x))))

    # batched serving throughput (persistent im2col buffers across calls)
    stream = rng.normal(size=(p["batch"] * p["serve_calls"], STAGES[0][0],
                              p["hw"], p["hw"]))
    serve_s = best_of(lambda: predict_batched(model, stream,
                                              batch_size=p["batch"]), 1)

    return {
        "workload": {"model": "conv_stack_512", "stages": len(STAGES),
                     "k": p["k"], "d": p["d"], "batch": p["batch"],
                     "hw": p["hw"], "table_sizes":
                         [mod.engine.table_size for mod in model]},
        "reconstruct_then_conv_s": baseline_s,
        "compressed_auto_s": compressed_s,
        "compressed_dense_cached_s": dense_cached_s,
        "compressed_centroid_s": centroid_s,
        "compressed_lut_s": lut_s,
        "compressed_lut_quant_s": lut_quant_s,
        "speedup_compressed_vs_reconstruct": baseline_s / compressed_s,
        "speedup_lut_vs_centroid": centroid_s / lut_s,
        "lut_bit_identical_to_centroid": lut_bit_identical,
        "lut_quant_rel_err": lut_quant_rel_err,
        "lut_table_bytes": lut_table_bytes,
        "max_abs_error_vs_baseline": max_err,
        "serve_samples_per_s": stream.shape[0] / serve_s,
    }


def _stream_workload(p: Dict[str, object]) -> Dict[str, object]:
    rng = np.random.default_rng(1)
    s, t = p["stream_subvectors"], p["stream_acts"]
    d, q = p["stream_d"], p["stream_q"]
    weights = rng.normal(size=(s, d))
    mask = nm_prune_mask(np.abs(weights), q, d)
    acts = rng.normal(size=t)
    acts[rng.random(t) < 0.3] = 0.0
    masked = weights * mask

    def scalar_loop():
        dense, sparse = DenseTile(d), SparseTile(d, q)
        for i in range(s):
            sparse.load_weights(masked[i], mask[i])
            for j in range(t):
                dense.compute(masked[i], float(acts[j]))
                sparse.compute(float(acts[j]))
        return dense, sparse

    def stream_pass():
        dense, sparse = DenseTile(d), SparseTile(d, q)
        dense.compute_stream(masked, acts)
        sparse.compute_stream_array(masked, mask, acts)
        return dense, sparse

    # the scalar loop is pure-Python PE calls with deterministic counters,
    # so any run's tiles serve for the equivalence check; the *timing*
    # takes the best of scalar_repeats runs — at smoke scale a single
    # sample is all scheduler noise and the regression gate tracks the
    # ratio (full mode keeps one run: the big workload is stable)
    scalar_s = float("inf")
    for _ in range(max(1, p["scalar_repeats"])):
        start = time.perf_counter()
        dense_a, sparse_a = scalar_loop()
        scalar_s = min(scalar_s, time.perf_counter() - start)
    stream_s = best_of(stream_pass, p["repeats"])
    dense_b, sparse_b = stream_pass()
    counts_match = (
        [(pe.gated_ops, pe.active_ops) for pe in dense_a.pes]
        == [(pe.gated_ops, pe.active_ops) for pe in dense_b.pes]
        and [(pe.gated_ops, pe.active_ops) for pe in sparse_a.pes]
        == [(pe.gated_ops, pe.active_ops) for pe in sparse_b.pes]
    )
    dense_stats, sparse_stats = stream_gating_stats(weights, mask, acts, q)

    return {
        "workload": {"subvectors": s, "activations": t, "d": d, "q": q},
        "scalar_tile_loop_s": scalar_s,
        "stream_s": stream_s,
        "stream_speedup_vs_scalar": scalar_s / stream_s,
        "gating_counts_match": bool(counts_match),
        "dense_gating_rate": dense_stats.gating_rate,
        "sparse_gating_rate": sparse_stats.gating_rate,
    }


def run(smoke: bool = False) -> Dict[str, object]:
    p = QUICK if smoke else FULL
    result = _compressed_workload(p)
    result["systolic_stream"] = _stream_workload(p)
    return result


#: CI gate: compressed-domain forward must stay above this fraction of the
#: dense-reconstruct baseline on the reference workload
MIN_SPEEDUP = 0.8

#: CI gate: compressed outputs must match the dense-reconstruct baseline
#: (generous for float re-association; catches real datapath bugs)
MAX_ABS_ERROR = 1e-6

#: CI gate: lut_quant's activation snapping may deviate from exact
#: compressed outputs by at most this relative error on the workload
QUANT_REL_ERR_BUDGET = 0.05


def check_report(report: Dict[str, object]) -> list:
    """Gate conditions on one :func:`run` report; returns error strings.

    Shared by the standalone ``--quick`` entry point and
    ``benchmarks.perf.run_perf`` so the two CI steps cannot drift apart.
    """
    errors = []
    stream = report["systolic_stream"]
    if not stream["gating_counts_match"]:
        errors.append("stream gating counts diverge from the scalar path")
    error = report["max_abs_error_vs_baseline"]
    if not error <= MAX_ABS_ERROR:
        errors.append(f"compressed outputs diverge from the baseline "
                      f"(max abs error {error:.2e} > {MAX_ABS_ERROR})")
    speedup = report["speedup_compressed_vs_reconstruct"]
    if speedup < MIN_SPEEDUP:
        errors.append(f"compressed-domain forward is {speedup:.2f}x dense "
                      f"(minimum {MIN_SPEEDUP}x)")
    if not report["lut_bit_identical_to_centroid"]:
        errors.append("exact LUT outputs are not bit-identical to the "
                      "centroid path")
    quant_err = report["lut_quant_rel_err"]
    if not quant_err <= QUANT_REL_ERR_BUDGET:
        errors.append(f"lut_quant rel err {quant_err:.4f} exceeds the "
                      f"{QUANT_REL_ERR_BUDGET} budget")
    return errors


def main(argv=None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    report = run(smoke=quick)
    speedup = report["speedup_compressed_vs_reconstruct"]
    stream = report["systolic_stream"]
    print(f"[perf] compressed-domain forward: {speedup:.2f}x vs "
          f"dense-reconstruct-then-conv "
          f"(centroid {report['reconstruct_then_conv_s'] / report['compressed_centroid_s']:.2f}x, "
          f"max err {report['max_abs_error_vs_baseline']:.2e})")
    print(f"[perf] LUT fast path: {report['speedup_lut_vs_centroid']:.2f}x vs "
          f"centroid (bit-identical: {report['lut_bit_identical_to_centroid']}, "
          f"lut_quant rel err {report['lut_quant_rel_err']:.4f}, "
          f"tables {report['lut_table_bytes'] / 1024:.0f} KiB)")
    print(f"[perf] systolic stream: {stream['stream_speedup_vs_scalar']:.1f}x vs "
          f"scalar tile loop, gating counts match: {stream['gating_counts_match']}")
    errors = check_report(report)
    for error in errors:
        print(f"[perf] ERROR: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
