"""Performance microbenchmark suite (tracked across PRs).

Unlike the ``bench_*`` reproductions of the paper's tables/figures, these
benchmarks measure *throughput of this codebase itself*: clustering
iterations/s, conv GFLOP/s and end-to-end compression wall-time.  The
runner (:mod:`benchmarks.perf.run_perf`) emits ``BENCH_perf.json`` so each
PR leaves a comparable perf record.

Run with::

    PYTHONPATH=src python -m benchmarks.perf.run_perf [--smoke] [--output BENCH_perf.json]
"""
