"""Convolution engine throughput: im2col conv forward/backward GFLOP/s
under the float64 and float32 compute policies."""

from __future__ import annotations

from typing import Dict

import numpy as np

from benchmarks.perf._legacy import legacy_conv2d_forward, legacy_im2col
from benchmarks.perf._timing import best_of
from repro.core import precision
from repro.nn import functional as F

FULL = dict(n=8, c_in=64, c_out=64, hw=16, kernel=3, repeats=3)
SMOKE = dict(n=2, c_in=16, c_out=16, hw=8, kernel=3, repeats=1)


def _conv_flops(n: int, c_in: int, c_out: int, hw: int, kernel: int) -> float:
    out_hw = hw  # stride 1, same padding
    return 2.0 * n * c_out * c_in * kernel * kernel * out_hw * out_hw


def _run_dtype(p: Dict[str, int], dtype: str) -> Dict[str, float]:
    rng = np.random.default_rng(0)
    with precision.precision(dtype):
        dt = precision.compute_dtype()
        x = rng.normal(size=(p["n"], p["c_in"], p["hw"], p["hw"])).astype(dt)
        w = rng.normal(size=(p["c_out"], p["c_in"], p["kernel"], p["kernel"])).astype(dt)
        b = np.zeros(p["c_out"], dtype=dt)
        pad = p["kernel"] // 2

        out, cols = F.conv2d_forward(x, w, b, stride=1, padding=pad)
        grad = np.ones_like(out)

        fwd_s = best_of(lambda: F.conv2d_forward(x, w, b, 1, pad), p["repeats"])
        bwd_s = best_of(
            lambda: F.conv2d_backward(grad, cols, x.shape, w, 1, pad), p["repeats"])
        # im2col path comparison: sliding_window_view vs the seed tap loop
        legacy_fwd_s = best_of(
            lambda: legacy_conv2d_forward(x, w, b, 1, pad), p["repeats"])
        im2col_s = best_of(
            lambda: F.im2col(x, (p["kernel"], p["kernel"]), 1, pad), p["repeats"])
        legacy_im2col_s = best_of(
            lambda: legacy_im2col(x, (p["kernel"], p["kernel"]), 1, pad), p["repeats"])

    flops = _conv_flops(p["n"], p["c_in"], p["c_out"], p["hw"], p["kernel"])
    return {
        "forward_s": fwd_s,
        "backward_s": bwd_s,
        "forward_gflops": flops / fwd_s / 1e9,
        # backward does roughly 2x the forward work (grad_w + grad_x GEMMs)
        "backward_gflops": 2.0 * flops / bwd_s / 1e9,
        # conv GFLOP/s delta attributable to the sliding-window im2col
        "forward_gflops_loop_im2col": flops / legacy_fwd_s / 1e9,
        "forward_gflops_im2col_delta": flops / fwd_s / 1e9 - flops / legacy_fwd_s / 1e9,
        "im2col_s": im2col_s,
        "im2col_loop_s": legacy_im2col_s,
        "im2col_speedup": legacy_im2col_s / im2col_s,
    }


def run(smoke: bool = False) -> Dict[str, object]:
    p = SMOKE if smoke else FULL
    return {
        "workload": {key: p[key] for key in ("n", "c_in", "c_out", "hw", "kernel")},
        "fp64": _run_dtype(p, "float64"),
        "fp32": _run_dtype(p, "float32"),
    }
