"""Perf suite runner: emits ``BENCH_perf.json`` for the PR's perf trajectory.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.run_perf [--smoke] [--output PATH]

``--smoke`` shrinks every workload so the suite finishes in a few seconds
(used by CI); the full run produces the numbers quoted in PR descriptions.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # running as a plain script
    _root = Path(__file__).resolve().parents[2]
    for entry in (_root, _root / "src"):
        if str(entry) not in sys.path:
            sys.path.insert(0, str(entry))

import numpy as np

from benchmarks.perf import (
    bench_clustering,
    bench_conv,
    bench_end_to_end,
    bench_explore,
    bench_inference,
    bench_pipeline,
    bench_serving,
    bench_telemetry,
    compare_perf,
)


def tracked_smoke_floor(paths) -> dict:
    """Elementwise minimum of the tracked metrics over smoke reports.

    The minimum — not the mean — is what gets committed as the gate's
    floor: smoke workloads are tiny and their ratios noisy, so a
    conservative floor over several runs is what keeps the 20% tolerance
    meaningful instead of flaky.  Raises ``ValueError`` for a non-smoke
    report so a mixed-up path fails before any benchmark runs.
    """
    floor: dict = {}
    for path in paths:
        smoke = json.loads(Path(path).read_text())
        if smoke.get("mode") != "smoke":
            raise ValueError(f"{path} is not a smoke-mode report "
                             f"(mode={smoke.get('mode')!r})")
        for key, value in compare_perf.tracked_metrics(smoke).items():
            floor[key] = min(value, floor.get(key, value))
    return floor


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_perf.json",
                        help="where to write the JSON report")
    parser.add_argument("--smoke", "--quick", dest="smoke",
                        action="store_true",
                        help="tiny workloads for CI smoke coverage "
                             "(--quick is an alias)")
    parser.add_argument("--smoke-report", nargs="+", default=None,
                        metavar="PATH",
                        help="smoke-mode report(s) whose tracked metrics get "
                             "embedded as tracked_smoke (lets compare_perf "
                             "gate CI smoke runs against a committed "
                             "full-mode baseline).  With several reports the "
                             "elementwise MINIMUM is embedded — a "
                             "conservative floor that absorbs the "
                             "run-to-run noise of tiny smoke workloads")
    args = parser.parse_args(argv)

    # validate the smoke reports up front: a typo'd path or wrong-mode file
    # must fail in milliseconds, not after the whole suite has run
    tracked_smoke = None
    if args.smoke_report:
        try:
            tracked_smoke = tracked_smoke_floor(args.smoke_report)
        except (OSError, ValueError) as error:
            print(f"[perf] ERROR: --smoke-report: {error}", file=sys.stderr)
            return 1

    suites = (
        ("clustering", bench_clustering.run),
        ("conv", bench_conv.run),
        ("end_to_end", bench_end_to_end.run),
        ("inference", bench_inference.run),
        ("pipeline", bench_pipeline.run),
        ("serving", lambda smoke: {
            **bench_serving.run(smoke=smoke),
            "sharded": bench_serving.run_sharded(smoke=smoke)}),
        ("explore", bench_explore.run),
        ("telemetry", bench_telemetry.run),
    )
    report = {
        "schema": 1,
        "mode": "smoke" if args.smoke else "full",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    for name, runner in suites:
        start = time.perf_counter()
        report[name] = runner(smoke=args.smoke)
        print(f"[perf] {name}: done in {time.perf_counter() - start:.2f}s",
              flush=True)

    # the regression gate's scale-free ratios, flattened for easy diffing;
    # --smoke-report additionally embeds the same metrics from smoke runs
    # so CI smoke jobs can gate against this (full-mode) baseline
    report["tracked"] = compare_perf.tracked_metrics(report)
    if tracked_smoke is not None:
        report["tracked_smoke"] = tracked_smoke

    out = Path(args.output)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[perf] wrote {out}")

    cluster = report["clustering"]
    print(f"[perf] masked k-means speedup vs seed: "
          f"fp64 {cluster['speedup_fp64_vs_legacy']:.2f}x, "
          f"fp32 {cluster['speedup_fp32_vs_legacy']:.2f}x")
    e2e = report["end_to_end"]
    if not e2e["parallel_matches_sequential"]:
        print("[perf] ERROR: parallel compression diverged from sequential",
              file=sys.stderr)
        return 1

    inference = report["inference"]
    stream = inference["systolic_stream"]
    print(f"[perf] compressed-domain forward: "
          f"{inference['speedup_compressed_vs_reconstruct']:.2f}x vs "
          f"dense-reconstruct-then-conv; LUT fast path "
          f"{inference['speedup_lut_vs_centroid']:.2f}x vs centroid "
          f"(bit-identical: {inference['lut_bit_identical_to_centroid']}); "
          f"systolic stream "
          f"{stream['stream_speedup_vs_scalar']:.1f}x vs scalar tile loop")
    pipeline = report["pipeline"]
    print(f"[perf] pipeline cold {pipeline['cold_seconds']:.2f}s -> warm "
          f"{pipeline['warm_seconds']:.2f}s "
          f"({pipeline['warm_speedup']:.1f}x, cluster "
          f"{pipeline['warm_cluster_status']})")
    serving = report["serving"]
    print(f"[perf] serving: dynamic batching "
          f"{serving['speedup_batched_vs_sequential']:.2f}x vs sequential "
          f"({serving['batched_sps']:.0f} req/s, "
          f"mean batch {serving['mean_batch_size']:.1f}, "
          f"p95 {serving['latency_ms_p95']:.1f} ms)")
    sharded = serving["sharded"]
    print(f"[perf] sharded serving: {sharded['workers']} process workers "
          f"{sharded['speedup_process_vs_thread']:.2f}x thread replicas on "
          f"{sharded['cpu_count']} CPUs "
          f"({sharded['process_sps']:.0f} req/s, open-loop p99 "
          f"{sharded['open_loop']['latency_ms']['p99']:.1f} ms, "
          f"{sharded['compressed_state_private_bytes']} B private state)")
    explore = report["explore"]
    print(f"[perf] explore: {explore['candidates']}-candidate sweep, frontier "
          f"{explore['frontier_size']} points, parallel "
          f"{explore['speedup_parallel_vs_sequential']:.2f}x "
          f"({explore['workers_parallel']} workers), warm cache "
          f"{explore['cache_speedup']:.2f}x, "
          f"{explore['cold_cluster_layers_cached']} cluster results reused")
    tele = report["telemetry"]
    print(f"[perf] telemetry: disabled span point "
          f"{tele['disabled_ns_per_span']:.0f} ns "
          f"(budget {tele['disabled_budget_ns']:.0f} ns), enabled "
          f"{tele['enabled_ns_per_span']:.0f} ns, on/off ratio "
          f"{tele['overhead_ratio_on_vs_off']:.1f}x")

    errors = bench_inference.check_report(inference)
    errors += bench_pipeline.check_report(pipeline)
    errors += bench_serving.check_report(serving)
    errors += bench_serving.check_sharded_report(sharded)
    errors += bench_explore.check_report(explore)
    errors += bench_telemetry.check_report(tele)
    for error in errors:
        print(f"[perf] ERROR: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
