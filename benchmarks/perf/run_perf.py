"""Perf suite runner: emits ``BENCH_perf.json`` for the PR's perf trajectory.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.run_perf [--smoke] [--output PATH]

``--smoke`` shrinks every workload so the suite finishes in a few seconds
(used by CI); the full run produces the numbers quoted in PR descriptions.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # running as a plain script
    _root = Path(__file__).resolve().parents[2]
    for entry in (_root, _root / "src"):
        if str(entry) not in sys.path:
            sys.path.insert(0, str(entry))

import numpy as np

from benchmarks.perf import (
    bench_clustering,
    bench_conv,
    bench_end_to_end,
    bench_inference,
    bench_pipeline,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_perf.json",
                        help="where to write the JSON report")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workloads for CI smoke coverage")
    args = parser.parse_args(argv)

    suites = (
        ("clustering", bench_clustering.run),
        ("conv", bench_conv.run),
        ("end_to_end", bench_end_to_end.run),
        ("inference", bench_inference.run),
        ("pipeline", bench_pipeline.run),
    )
    report = {
        "schema": 1,
        "mode": "smoke" if args.smoke else "full",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    for name, runner in suites:
        start = time.perf_counter()
        report[name] = runner(smoke=args.smoke)
        print(f"[perf] {name}: done in {time.perf_counter() - start:.2f}s",
              flush=True)

    out = Path(args.output)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[perf] wrote {out}")

    cluster = report["clustering"]
    print(f"[perf] masked k-means speedup vs seed: "
          f"fp64 {cluster['speedup_fp64_vs_legacy']:.2f}x, "
          f"fp32 {cluster['speedup_fp32_vs_legacy']:.2f}x")
    e2e = report["end_to_end"]
    if not e2e["parallel_matches_sequential"]:
        print("[perf] ERROR: parallel compression diverged from sequential",
              file=sys.stderr)
        return 1

    inference = report["inference"]
    stream = inference["systolic_stream"]
    print(f"[perf] compressed-domain forward: "
          f"{inference['speedup_compressed_vs_reconstruct']:.2f}x vs "
          f"dense-reconstruct-then-conv; systolic stream "
          f"{stream['stream_speedup_vs_scalar']:.1f}x vs scalar tile loop")
    pipeline = report["pipeline"]
    print(f"[perf] pipeline cold {pipeline['cold_seconds']:.2f}s -> warm "
          f"{pipeline['warm_seconds']:.2f}s "
          f"({pipeline['warm_speedup']:.1f}x, cluster "
          f"{pipeline['warm_cluster_status']})")

    errors = bench_inference.check_report(inference)
    errors += bench_pipeline.check_report(pipeline)
    for error in errors:
        print(f"[perf] ERROR: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
