"""Declarative pipeline wall-time: cold vs warm artifact cache.

Measures one end-to-end pipeline run (group -> prune -> cluster -> quantize
-> export -> serve_eval) cold, then again against the same
:class:`~repro.pipeline.artifacts.ArtifactStore` — the warm run must skip
the cluster stage entirely (assert via the stage-event log) and produce
bit-identical artifacts, so the reported speedup is exactly the clustering
wall-time the cache saves.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Dict

import numpy as np

from repro.nn import Conv2d, Sequential
from repro.nn.models import resnet18_mini
from repro.pipeline.artifacts import ArtifactStore
from repro.pipeline.config import PipelineConfig
from repro.pipeline.runner import Pipeline

FULL = dict(k=96, iterations=12, serve_samples=8)
SMOKE = dict(k=16, iterations=5, serve_samples=4)

#: (in_channels, out_channels) of the full-mode synthetic stack; 3x3 kernels.
FULL_STAGES = ((32, 64), (64, 128), (128, 256), (256, 256))


def _build_model(smoke: bool):
    if smoke:
        return resnet18_mini(num_classes=5, seed=1), "resnet18_mini", (3, 16, 16)
    rng = np.random.default_rng(7)
    model = Sequential(*(Conv2d(c_in, c_out, 3, padding=1, rng=rng)
                         for c_in, c_out in FULL_STAGES))
    return model, "conv_stack_256", (32, 8, 8)


def _identical(a, b) -> bool:
    for name, la in a.layers.items():
        lb = b.layers[name]
        if not (np.array_equal(la.assignments, lb.assignments)
                and np.array_equal(la.codebook.codewords, lb.codebook.codewords)
                and np.array_equal(la.mask, lb.mask)):
            return False
    return set(a.layers) == set(b.layers)


def run(smoke: bool = False) -> Dict[str, object]:
    p = SMOKE if smoke else FULL
    model, model_name, input_shape = _build_model(smoke)

    with tempfile.TemporaryDirectory() as tmp:
        config = PipelineConfig.from_dict({
            "preset": "mvq",
            "base": {"k": p["k"], "max_kmeans_iterations": p["iterations"]},
            "stages": ["group", "prune", "cluster", "quantize", "export",
                       "serve_eval"],
            "export_path": str(Path(tmp) / "artifact.npz"),
            "serve": {"batch_size": 4, "num_samples": p["serve_samples"],
                      "input_shape": list(input_shape)},
        })
        store = ArtifactStore()

        def timed_run(fresh_model):
            start = time.perf_counter()
            result = Pipeline(config, store=store).run(fresh_model)
            return time.perf_counter() - start, result

        cold_s, cold = timed_run(model)
        warm_s, warm = timed_run(model)

    cold_cluster = cold.event_for("cluster")
    warm_cluster = warm.event_for("cluster")
    return {
        "workload": {"model": model_name,
                     "layers": len(cold.compressed),
                     "k": p["k"], "iterations": p["iterations"]},
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "warm_speedup": cold_s / max(warm_s, 1e-12),
        "cold_cluster_status": cold_cluster["status"],
        "warm_cluster_status": warm_cluster["status"],
        "cluster_skipped_on_warm": warm_cluster["status"] == "cached",
        "warm_matches_cold": _identical(cold.compressed, warm.compressed),
        "serve_outputs_match": bool(
            warm.artifacts["serve_report"]["outputs_match"]),
    }


def check_report(report: Dict[str, object]):
    """Hard failures for the perf runner's exit code."""
    errors = []
    if not report["cluster_skipped_on_warm"]:
        errors.append("warm pipeline re-ran the cluster stage")
    if not report["warm_matches_cold"]:
        errors.append("warm-cache pipeline artifacts diverged from cold run")
    if not report["serve_outputs_match"]:
        errors.append("pipeline serve_eval diverged from dense reference")
    return errors


if __name__ == "__main__":
    import json
    print(json.dumps(run(smoke=True), indent=2))
