"""Explore the MVQ accelerator design space (the paper's Section 7 evaluation).

Sweeps the six hardware settings (WS, WS-CMS, EWS, EWS-C, EWS-CM, EWS-CMS)
across array sizes on the full-size ResNet-18 layer shapes and reports, per
configuration: accelerator area, runtime, speedup over the WS baseline,
energy efficiency, and where the design sits on the weight-loading roofline.

Usage:  python examples/accelerator_design_space.py [network]
        network is one of resnet18 (default), resnet50, vgg16, alexnet, mobilenet_v1
"""

from __future__ import annotations

import sys

from repro.accelerator.area import AreaModel
from repro.accelerator.config import ALL_SETTINGS, HardwareSetting, standard_setting
from repro.accelerator.performance import PerformanceModel
from repro.accelerator.roofline import RooflineModel
from repro.accelerator.workloads import WORKLOADS, network_macs, network_weights


def main(network: str = "resnet18") -> None:
    layers = WORKLOADS[network]()
    skip_dw = network.startswith("mobilenet")
    print(f"workload: {network}  ({network_macs(layers)/1e9:.2f} GMACs, "
          f"{network_weights(layers)/1e6:.1f} M weights)\n")

    performance = PerformanceModel()
    area_model = AreaModel()

    header = (f"{'setting':<10}{'array':>7}{'area mm2':>10}{'cycles M':>10}"
              f"{'speedup':>9}{'TOPS/W':>8}{'bound':>9}")
    print(header)
    print("-" * len(header))

    for size in (16, 32, 64):
        ws_baseline = performance.evaluate(layers, standard_setting(HardwareSetting.WS_BASE, size),
                                           skip_depthwise=skip_dw)
        for setting in ALL_SETTINGS:
            config = standard_setting(setting, array_size=size)
            perf = performance.evaluate(layers, config, skip_depthwise=skip_dw)
            efficiency = performance.efficiency(layers, config, skip_depthwise=skip_dw)
            area = area_model.accelerator_area_mm2(config)
            speedup = ws_baseline.cycles / perf.cycles
            point = RooflineModel(config).point(layers, skip_depthwise=skip_dw)
            print(f"{setting.value:<10}{size:>5}x{size:<2}{area:>9.2f}{perf.cycles/1e6:>10.2f}"
                  f"{speedup:>8.2f}x{efficiency:>8.2f}{point.bound:>9}")
        print()

    ews = standard_setting(HardwareSetting.EWS_BASE, 64)
    cms = standard_setting(HardwareSetting.EWS_CMS, 64)
    gain = (performance.efficiency(layers, cms, skip_depthwise=skip_dw)
            / performance.efficiency(layers, ews, skip_depthwise=skip_dw))
    area_cut = 1 - area_model.accelerator_area_mm2(cms) / area_model.accelerator_area_mm2(ews)
    print(f"headline @64x64: EWS-CMS is {gain:.1f}x more energy-efficient than base EWS "
          f"with a {area_cut:.0%} smaller accelerator (paper: 2.3x, 55%).")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "resnet18")
