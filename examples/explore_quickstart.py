"""Design-space exploration quickstart: a small grid sweep over the MVQ
compression x accelerator design space, ending in a Pareto frontier table.

Sweeps codebook size, stem pruning and the accelerator array size on the
tiny ResNet-18, evaluates every candidate through the declarative pipeline
(compress -> serve_eval for accuracy/CR -> accel_eval for latency/energy)
against one shared artifact cache, and prints the frontier as the same
markdown table `python -m repro.explore run` emits.

Usage:  PYTHONPATH=src python examples/explore_quickstart.py
"""

from __future__ import annotations

from repro.explore import SearchSpace, explore

space = SearchSpace.from_dict({
    "name": "example-grid",
    "model": "resnet18",
    "model_kwargs": {"num_classes": 5, "seed": 1},
    "workload": "resnet18",
    "pipeline": {
        "preset": "mvq",
        "base": {"k": 16, "max_kmeans_iterations": 8},
        "stages": ["group", "prune", "cluster", "quantize", "serve_eval",
                   "accel_eval"],
        "serve": {"batch_size": 4, "num_samples": 8},
        "data": {"num_samples": 64, "image_size": 16, "num_classes": 5},
        "accelerator": {"setting": "EWS-CMS", "array_size": 64},
    },
    "axes": [
        {"path": "base.k", "values": [12, 24]},                    # codebook size
        {"pattern": "stem.*", "field": "n_keep", "values": [2, 4]},  # stem pruning
        {"path": "accelerator.array_size", "values": [32, 64]},   # hardware
    ],
    # the default objective set plus output fidelity (negative distortion
    # vs the uncompressed network) — a smoother axis than top-1 accuracy
    # on tiny synthetic tasks, so the trade-off frontier stays visible
    "objectives": ["accuracy", "fidelity", "compression_ratio",
                   "latency_ms", "energy_mj"],
})

result = explore(space)        # strategy: grid (the space's default)

stats = result.stats
print(f"evaluated {stats['candidates']} candidates in "
      f"{stats['seconds']:.2f}s; cluster cache reused "
      f"{stats['cluster_layers_cached']} layer results "
      f"({stats['cluster_layers_fresh']} clustered fresh)\n")

names = ", ".join(o.name for o in result.frontier.objectives)
print(f"Pareto frontier over ({names}):")
print(result.to_markdown())

best = result.best()
print(f"best (scalarized): candidate {best.candidate.index} "
      f"{best.candidate.values_dict}")

# the winner is an ordinary pipeline scenario: run or serve it by name
scenario = result.best_scenario(name="example-grid-best")
print(f"\nreproduce it:  run_scenario({scenario.name!r}) after "
      "result.register_best(), or save the frontier JSON and re-run any "
      "point through `python -m repro.pipeline run point.json`")
