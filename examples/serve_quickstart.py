"""Quickstart: serve a compressed model behind the dynamic-batching server.

End-to-end tour of ``repro.serve``:

1. compress a scenario model through the declarative pipeline and swap in
   the decode-free compressed-domain modules (``load_scenario``);
2. register it with a :class:`~repro.serve.server.ModelServer` under a
   max-batch / max-wait batching policy;
3. fire a burst of concurrent single-image requests at it (the client-side
   fan-out the batcher coalesces);
4. read the stats report: throughput, p50/p95 latency, and the batch-size
   histogram that shows dynamic batching actually happened;
5. demonstrate the overload policy by overfilling a tiny bounded queue.

The same server is scriptable from a shell::

    python -m repro.serve --scenario serving-resnet18 --stats <<'EOF'
    {"id": 1, "synthetic": true, "seed": 7}
    {"cmd": "stats"}
    EOF

Usage:  python examples/serve_quickstart.py
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.serve import (
    BatchPolicy,
    ModelServer,
    ServerOverloaded,
    load_scenario,
)


def main() -> None:
    # ---------------------------------------------------------- load + swap
    print("compressing scenario 'serving-resnet18' ...")
    loaded = load_scenario("serving-resnet18")
    print(f"  {loaded.meta['layers']} compressed layers, "
          f"CR {loaded.meta['compression_ratio']:.1f}x, "
          f"sparsity {loaded.meta['sparsity']:.2f}")

    # ------------------------------------------------------------- register
    server = ModelServer()
    loaded.register_with(server, policy=BatchPolicy(
        max_batch_size=16, max_wait_ms=5.0, max_queue_size=512,
        overload="shed"))

    rng = np.random.default_rng(0)
    requests = rng.standard_normal((128, *loaded.input_shape))

    with server:
        # ------------------------------------------------- batched serving
        server.predict_many(loaded.name, requests[:16])      # warm-up
        start = time.perf_counter()
        outputs = server.predict_many(loaded.name, requests)
        batched_s = time.perf_counter() - start

        # ------------------------------------------- sequential comparison
        start = time.perf_counter()
        for row in requests:
            server.predict(loaded.name, row)                 # one at a time
        sequential_s = time.perf_counter() - start

        stats = server.stats_report()["models"][loaded.name]

    print(f"\nserved {len(requests)} requests")
    print(f"  concurrent clients (coalesced) : {len(requests) / batched_s:8.0f} req/s")
    print(f"  one request in flight at a time: {len(requests) / sequential_s:8.0f} req/s"
          f"  (each pays the {5.0:.0f} ms max-wait alone)")
    # the apples-to-apples compute-level comparison (no server, no max-wait)
    # lives in benchmarks/perf/bench_serving.py; this gap shows why clients
    # should keep the queue full rather than serialise their requests
    print(f"  latency p50/p95  : {stats['latency_ms']['p50']:.1f} / "
          f"{stats['latency_ms']['p95']:.1f} ms")
    print(f"  batch histogram  : {json.dumps(stats['batch_size_histogram'])}")
    print(f"  outputs shape    : {outputs.shape}")

    # --------------------------------------------------- overload shedding
    tiny = ModelServer()
    loaded_small = load_scenario("serving-resnet18")
    loaded_small.register_with(tiny, policy=BatchPolicy(
        max_batch_size=4, max_queue_size=8, overload="shed"))
    shed = 0
    # no started workers: the bounded queue fills and sheds deterministically
    for row in requests[:12]:
        try:
            tiny.submit(loaded_small.name, row)
        except ServerOverloaded:
            shed += 1
    print(f"\noverload policy: {shed} of 12 requests shed by the bounded queue "
          f"(queue depth 8)")
    tiny.shutdown(drain=False)


if __name__ == "__main__":
    main()
