"""Sharded serving: worker processes over one shared-memory model copy.

End-to-end tour of the multi-process serving tier:

1. compress a scenario model once in the parent (``load_scenario``);
2. build a :class:`~repro.serve.sharded.ProcessReplicaPool` — the model's
   read-only arrays (deduplicated codebooks, assignments, masks, dense
   params) are serialized into a single ``ShmArena`` shared-memory segment
   and N spawned workers rebuild their models on zero-copy views of it;
3. register the pool with the same :class:`~repro.serve.server.ModelServer`
   used for thread replicas and serve a burst of requests;
4. verify the results are **bit-identical** to in-process serving;
5. read the zero-copy accounting from ``pool.info()`` (one arena, N
   attachments, zero private model bytes per worker);
6. SIGKILL a worker mid-flight and watch the pool re-spawn it
   transparently.

The ``if __name__ == "__main__"`` guard is required: workers use the
``spawn`` start method, which re-imports this file in each child.

Usage:  python examples/serve_sharded.py
"""

from __future__ import annotations

import numpy as np

from repro.nn import predict_batched
from repro.serve import ModelServer, load_scenario


def main() -> None:
    # ---------------------------------------------------------- load + swap
    print("compressing scenario 'serving-resnet18' ...")
    loaded = load_scenario("serving-resnet18")
    print(f"  {loaded.meta['layers']} compressed layers, "
          f"CR {loaded.meta['compression_ratio']:.1f}x")

    # ------------------------------------------------ shared arena + pool
    # serializes codebooks/assignments/masks/params into one named
    # /dev/shm segment; each worker attaches read-only views of it
    pool = loaded.process_pool(workers=2)
    try:
        server = ModelServer()
        pool.register_with(server, loaded.name,
                           policy=loaded.policy(max_batch_size=8,
                                                max_wait_ms=2.0))

        rng = np.random.default_rng(0)
        requests = rng.standard_normal((32, *loaded.input_shape))

        with server:
            outputs = server.predict_many(loaded.name, requests)

        # ------------------------------------------------- bit-exactness
        reference = predict_batched(loaded.replicas[0], requests, batch_size=8)
        assert np.array_equal(outputs, reference)
        print(f"\nserved {len(requests)} requests across "
              f"{len(pool.replicas)} worker processes")
        print("  bit-identical to in-process serving: True")

        # --------------------------------------------- zero-copy accounting
        info = pool.info()
        arena = info["arena"]
        pids = sorted(w["pid"] for w in info["workers"])
        print(f"  arena {arena['name']}: {arena['nbytes'] / 1024:.0f} KiB "
              f"shared, refcount {arena['refcount']} "
              f"(creator + {len(pool.replicas)} workers)")
        print(f"  worker pids      : {pids}")
        print("  every worker maps the same physical copy of the model; "
              "private model bytes per worker: 0")

        # ------------------------------------------------- kill + re-spawn
        victim = pool.replicas[0]
        old_pid = victim.pid
        victim.kill()                       # SIGKILL, as chaos would
        out = victim.forward(requests[:4])  # transparently re-spawned
        assert np.array_equal(out, reference[:4])
        print(f"\nchaos: SIGKILL'd worker {old_pid}, next forward "
              f"re-spawned pid {victim.pid} and stayed bit-exact "
              f"(respawns={victim.respawns})")
    finally:
        pool.close()                        # detaches workers, unlinks arena
    print("arena unlinked; /dev/shm is clean")


if __name__ == "__main__":
    main()
