"""Compare MVQ against conventional VQ baselines (PQF, BGD) and 2-bit uniform
quantization (PvQ) on the same trained network.

Mirrors the comparison the paper's Fig. 13 / Table 4 make: at a matched
compression ratio, masked VQ approximates the *important* weights better
(lower masked SSE), keeps accuracy, and — unlike the dense-VQ baselines —
also leaves the network 75% sparse, cutting FLOPs.

Usage:  python examples/compare_vq_methods.py
"""

from __future__ import annotations

from repro.baselines import BGDCompressor, PQFCompressor, PvQQuantizer
from repro.core import CodebookFinetuner, LayerCompressionConfig, MVQCompressor
from repro.core.grouping import group_weight
from repro.core.metrics import masked_sse
from repro.core.pruning import nm_prune_mask
from repro.nn import CrossEntropyLoss, SGD, Trainer, evaluate_accuracy
from repro.nn.data import SyntheticClassification, train_val_split
from repro.nn.models import resnet18_mini


def train_dense_baseline(train_set, val_set):
    model = resnet18_mini(num_classes=5, seed=1)
    trainer = Trainer(model, CrossEntropyLoss(),
                      SGD(model.parameters(), lr=0.05, momentum=0.9), batch_size=32)
    trainer.fit(train_set, epochs=6, val_set=val_set)
    return model


def fresh_copy(reference):
    model = resnet18_mini(num_classes=5, seed=1)
    model.load_state_dict(reference.state_dict())
    return model


def finetune(model, compressed, train_set, epochs=2):
    finetuner = CodebookFinetuner(compressed, lr=3e-3)
    trainer = Trainer(model, CrossEntropyLoss(),
                      SGD(model.parameters(), lr=0.02, momentum=0.9),
                      batch_size=32, hook=finetuner.step)
    trainer.fit(train_set, epochs=epochs)


def important_weight_sse(model, compressed) -> float:
    """Clustering error restricted to the top-2-of-8 magnitude weights."""
    modules = dict(model.named_modules())
    total = 0.0
    for state in compressed:
        original = group_weight(modules[state.name].weight.value, 8)
        recon = group_weight(state.reconstruct_weight(), 8)
        mask = nm_prune_mask(original, 2, 8)
        total += masked_sse(original, recon, mask)
    return total


def main() -> None:
    dataset = SyntheticClassification(360, 16, 5, seed=0)
    train_set, val_set = train_val_split(dataset, val_fraction=0.25)
    reference = train_dense_baseline(train_set, val_set)
    baseline_acc = evaluate_accuracy(reference, val_set)
    print(f"dense baseline accuracy: {baseline_acc:.3f}\n")

    rows = []

    # ----- MVQ (ours): masked VQ + 2:8 pruning -------------------------------
    model = fresh_copy(reference)
    mvq_cfg = LayerCompressionConfig(k=32, d=8, n_keep=2, m=8)
    mvq = MVQCompressor(mvq_cfg).compress(model)
    sse = important_weight_sse(model, mvq)
    mvq.apply_to_model()
    finetune(model, mvq, train_set)
    rows.append(("MVQ (ours)", mvq.compression_ratio(), mvq.sparsity(), sse,
                 evaluate_accuracy(model, val_set)))

    # ----- PQF: permutation + common k-means ---------------------------------
    model = fresh_copy(reference)
    pqf = PQFCompressor(LayerCompressionConfig(k=48, d=8), permutation_iterations=60).compress(model)
    sse = important_weight_sse(model, pqf)
    pqf.apply_to_model()
    finetune(model, pqf, train_set)
    rows.append(("PQF", pqf.compression_ratio(), 0.0, sse, evaluate_accuracy(model, val_set)))

    # ----- BGD: activation-weighted clustering --------------------------------
    model = fresh_copy(reference)
    calibration = train_set.images[:4]
    bgd = BGDCompressor(LayerCompressionConfig(k=48, d=8), calibration_batch=calibration).compress(model)
    sse = important_weight_sse(model, bgd)
    bgd.apply_to_model()
    finetune(model, bgd, train_set)
    rows.append(("BGD", bgd.compression_ratio(), 0.0, sse, evaluate_accuracy(model, val_set)))

    # ----- PvQ: 2-bit uniform scalar quantization -----------------------------
    model = fresh_copy(reference)
    pvq = PvQQuantizer(bits=2)
    pvq.apply(model)
    rows.append(("PvQ (2-bit uniform)", pvq.compression_ratio(), 0.0, float("nan"),
                 evaluate_accuracy(model, val_set)))

    print(f"{'method':<22}{'CR':>7}{'sparsity':>10}{'imp. SSE':>12}{'accuracy':>10}")
    for name, ratio, sparsity, sse, acc in rows:
        sse_str = f"{sse:10.2f}" if sse == sse else "         -"
        print(f"{name:<22}{ratio:6.1f}x{sparsity:9.0%} {sse_str} {acc:9.3f}")


if __name__ == "__main__":
    main()
