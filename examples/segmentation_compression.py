"""Compress a DeepLab-lite segmenter with MVQ (the paper's DeepLab-V3/VOC scenario).

Trains the MobileNet-V2-backbone segmentation model on the synthetic VOC
surrogate, compresses it with 1:2-sparse masked VQ (the pruning pattern the
paper picks for parameter-efficient models) and compares against 2-bit
uniform quantization, which the paper shows collapsing (Table 6).

Usage:  python examples/segmentation_compression.py
"""

from __future__ import annotations

from repro.baselines import PvQQuantizer
from repro.core import CodebookFinetuner, LayerCompressionConfig, MVQCompressor
from repro.nn.data import SyntheticSegmentation
from repro.nn.models import deeplab_lite_mini
from repro.nn.models.deeplab import segmentation_miou, train_segmenter


def main() -> None:
    dataset = SyntheticSegmentation(num_samples=100, image_size=16, num_classes=3, seed=0)
    model = deeplab_lite_mini(num_classes=3, seed=0)

    print("training dense segmenter ...")
    train_segmenter(model, dataset, epochs=5, batch_size=16)
    baseline = segmentation_miou(model, dataset)
    dense_state = model.state_dict()
    print(f"dense mIoU: {baseline:.3f}")

    config = LayerCompressionConfig(k=32, d=8, n_keep=1, m=2)   # 1:2 -> 50% sparsity
    compressed = MVQCompressor(config).compress(model)
    compressed.apply_to_model()
    print(f"MVQ: ratio={compressed.compression_ratio():.1f}x sparsity={compressed.sparsity():.0%}")

    finetuner = CodebookFinetuner(compressed, lr=3e-3)
    train_segmenter(model, dataset, epochs=3, batch_size=16, hook=finetuner.step)
    mvq_miou = segmentation_miou(model, dataset)
    print(f"MVQ mIoU after fine-tuning: {mvq_miou:.3f}")

    pvq_model = deeplab_lite_mini(num_classes=3, seed=0)
    pvq_model.load_state_dict(dense_state)
    PvQQuantizer(bits=2).apply(pvq_model)
    print(f"2-bit uniform quantization mIoU (no fine-tuning): "
          f"{segmentation_miou(pvq_model, dataset):.3f}")


if __name__ == "__main__":
    main()
