"""Quickstart: compress a trained CNN with MVQ and recover accuracy by fine-tuning.

Runs the full pipeline of the paper (Fig. 2) on a scaled-down ResNet-18
trained on a synthetic classification task, expressed as the repo's
*declarative pipeline*: the compression hyper-parameters, the stage list
and the fine-tuning recipe are all one JSON-able
:class:`~repro.pipeline.config.PipelineConfig` instead of imperative glue.

1. weight grouping + N:M pruning            (``group``, ``prune`` stages)
2. masked k-means clustering                (``cluster`` stage, cached)
3. int8 codebook quantization               (``quantize`` stage)
4. codebook fine-tuning with masked grads   (``finetune`` stage)
5. write reconstructed weights back         (``apply`` stage)

The same config can be saved with ``config.save("quickstart.json")`` and
re-run from the command line: ``python -m repro.pipeline run quickstart.json``.

Usage:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.nn import CrossEntropyLoss, SGD, Trainer, evaluate_accuracy
from repro.nn.data import SyntheticClassification, train_val_split
from repro.nn.flops import count_flops, count_sparse_flops
from repro.nn.models import resnet18_mini
from repro.pipeline import Pipeline, PipelineConfig


def main() -> None:
    # ------------------------------------------------------------------ data
    dataset = SyntheticClassification(num_samples=360, image_size=16, num_classes=5, seed=0)
    train_set, val_set = train_val_split(dataset, val_fraction=0.25)

    # ------------------------------------------------------- dense baseline
    model = resnet18_mini(num_classes=5, seed=1)
    trainer = Trainer(model, CrossEntropyLoss(),
                      SGD(model.parameters(), lr=0.05, momentum=0.9), batch_size=32)
    trainer.fit(train_set, epochs=6, val_set=val_set)
    baseline_acc = evaluate_accuracy(model, val_set)
    dense_flops = count_flops(model, (3, 16, 16))
    print(f"dense baseline:     accuracy={baseline_acc:.3f}  FLOPs={dense_flops/1e6:.2f}M")

    # ------------------------------------------- the declarative MVQ pipeline
    config = PipelineConfig.from_dict({
        "preset": "mvq",          # Table 3 case D: prune + masked k-means + mask
        "base": {
            "k": 48,              # codewords per layer codebook
            "d": 8,               # subvector length (output-channel-wise grouping)
            "n_keep": 2,          # N of N:M pruning ...
            "m": 8,               # ... i.e. 2:8 -> 75% sparsity
            "codebook_bits": 8,
        },
        # stage list: compress, then fine-tune the codebooks (Eq. 6), then
        # write the reconstructed weights back into the live network
        "stages": ["group", "prune", "cluster", "quantize", "finetune", "apply"],
        "data": {"num_samples": 360, "image_size": 16, "num_classes": 5,
                 "seed": 0, "val_fraction": 0.25},
        "finetune": {"epochs": 3, "lr": 0.02, "codebook_lr": 3e-3},
    })

    # run compression only first (stop before fine-tuning) to report the
    # accuracy drop the fine-tune stage then recovers
    pipeline = Pipeline(config)
    result = pipeline.run(model, stages=["group", "prune", "cluster",
                                         "quantize", "apply"])
    compressed = result.compressed
    compressed_acc = evaluate_accuracy(model, val_set)
    sparse_flops = count_sparse_flops(model, (3, 16, 16),
                                      sparsity_by_layer=compressed.sparsity_by_layer())
    print(f"after compression:  accuracy={compressed_acc:.3f}  "
          f"compression ratio={compressed.compression_ratio():.1f}x  "
          f"sparsity={compressed.sparsity():.0%}  FLOPs={sparse_flops/1e6:.2f}M")

    # ------------------------------------------- codebook fine-tuning (Eq. 6)
    # continue the same run: the finetune stage reuses the clustered state
    # already in the context (nothing recomputed) and keeps the model's
    # weights in sync with the updated codebooks
    pipeline.run(model, stages=["finetune"], context=result.context)
    final_acc = evaluate_accuracy(model, val_set)
    print(f"after fine-tuning:  accuracy={final_acc:.3f} "
          f"(baseline {baseline_acc:.3f}, {compressed.compression_ratio():.1f}x smaller, "
          f"{1 - sparse_flops/dense_flops:.0%} fewer FLOPs)")


if __name__ == "__main__":
    main()
