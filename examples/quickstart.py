"""Quickstart: compress a trained CNN with MVQ and recover accuracy by fine-tuning.

Runs the full four-stage pipeline of the paper (Fig. 2) on a scaled-down
ResNet-18 trained on a synthetic classification task:

1. weight grouping + N:M pruning,
2. masked k-means clustering,
3. int8 codebook quantization,
4. codebook fine-tuning with masked gradients.

Usage:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import CodebookFinetuner, LayerCompressionConfig, MVQCompressor
from repro.nn import CrossEntropyLoss, SGD, Trainer, evaluate_accuracy
from repro.nn.data import SyntheticClassification, train_val_split
from repro.nn.flops import count_flops, count_sparse_flops
from repro.nn.models import resnet18_mini


def main() -> None:
    # ------------------------------------------------------------------ data
    dataset = SyntheticClassification(num_samples=360, image_size=16, num_classes=5, seed=0)
    train_set, val_set = train_val_split(dataset, val_fraction=0.25)

    # ------------------------------------------------------- dense baseline
    model = resnet18_mini(num_classes=5, seed=1)
    trainer = Trainer(model, CrossEntropyLoss(),
                      SGD(model.parameters(), lr=0.05, momentum=0.9), batch_size=32)
    trainer.fit(train_set, epochs=6, val_set=val_set)
    baseline_acc = evaluate_accuracy(model, val_set)
    dense_flops = count_flops(model, (3, 16, 16))
    print(f"dense baseline:     accuracy={baseline_acc:.3f}  FLOPs={dense_flops/1e6:.2f}M")

    # ------------------------------------------------- MVQ compression (Fig. 2)
    config = LayerCompressionConfig(
        k=48,          # codewords per layer codebook
        d=8,           # subvector length (output-channel-wise grouping)
        n_keep=2,      # N of N:M pruning ...
        m=8,           # ... i.e. 2:8 -> 75% sparsity
        codebook_bits=8,
    )
    compressed = MVQCompressor(config).compress(model)
    compressed.apply_to_model()
    compressed_acc = evaluate_accuracy(model, val_set)
    sparse_flops = count_sparse_flops(model, (3, 16, 16),
                                      sparsity_by_layer=compressed.sparsity_by_layer())
    print(f"after compression:  accuracy={compressed_acc:.3f}  "
          f"compression ratio={compressed.compression_ratio():.1f}x  "
          f"sparsity={compressed.sparsity():.0%}  FLOPs={sparse_flops/1e6:.2f}M")

    # ------------------------------------------- codebook fine-tuning (Eq. 6)
    finetuner = CodebookFinetuner(compressed, lr=3e-3)
    finetune_trainer = Trainer(model, CrossEntropyLoss(),
                               SGD(model.parameters(), lr=0.02, momentum=0.9),
                               batch_size=32, hook=finetuner.step)
    finetune_trainer.fit(train_set, epochs=3)
    final_acc = evaluate_accuracy(model, val_set)
    print(f"after fine-tuning:  accuracy={final_acc:.3f} "
          f"(baseline {baseline_acc:.3f}, {compressed.compression_ratio():.1f}x smaller, "
          f"{1 - sparse_flops/dense_flops:.0%} fewer FLOPs)")


if __name__ == "__main__":
    main()
