"""Declarative workloads: one JSON spec drives model, pipeline and accelerator.

A :class:`~repro.workloads.WorkloadSpec` describes a network as a validated
list of layer dicts (op type, dims, norm/act, dataflow tags).  From that one
spec the repo derives *both* executables:

* ``spec.build_model()``  — an executable :mod:`repro.nn` module that trains,
  compresses and serves like any hand-written zoo model, and
* ``spec.layer_shapes()`` — the accelerator
  :class:`~repro.accelerator.workloads.LayerShape` table the performance /
  energy models price (attention lowers to its four weight GEMMs).

No per-model Python is required: the same JSON file can be run directly with
``python -m repro.pipeline run my_workload.json``.

Usage:  python examples/workload_custom.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.pipeline.scenarios import Scenario, run_scenario
from repro.workloads import WorkloadSpec

# ------------------------------------------------------------------ the spec
# A small residual CNN with a linear head, written as plain data.  Channel
# counts, feature-map sizes and parameter/MAC totals are all derived (and
# validated) from this single description.
SPEC_DICT = {
    "name": "custom_resnetlet",
    "description": "Tiny custom residual CNN defined entirely as JSON.",
    "input_shape": [3, 16, 16],
    "layers": [
        {"name": "stem", "op": "conv",
         "dims": {"in_channels": 3, "out_channels": 16, "kernel_size": 3,
                  "padding": 1},
         "bias": False, "norm": "batch", "act": "relu", "save_as": "b0"},
        {"name": "b1.conv1", "op": "conv",
         "dims": {"in_channels": 16, "out_channels": 16, "kernel_size": 3,
                  "padding": 1},
         "bias": False, "norm": "batch", "act": "relu"},
        {"name": "b1.conv2", "op": "conv",
         "dims": {"in_channels": 16, "out_channels": 16, "kernel_size": 3,
                  "padding": 1},
         "bias": False, "norm": "batch"},
        {"name": "b1.add", "op": "residual", "dims": {"from": "b0"},
         "act": "relu"},
        {"name": "b2.down", "op": "conv",
         "dims": {"in_channels": 16, "out_channels": 32, "kernel_size": 3,
                  "stride": 2, "padding": 1},
         "bias": False, "norm": "batch", "act": "relu"},
        {"name": "pool", "op": "pool", "dims": {"kind": "global_avg"}},
        {"name": "head", "op": "linear",
         "dims": {"in_features": 32, "out_features": 5}},
    ],
}


def main() -> None:
    spec = WorkloadSpec.from_dict(SPEC_DICT)

    # both factories come from the same validated data
    model = spec.build_model(seed=1)
    table = spec.layer_shapes()
    print(f"spec {spec.name!r}: output shape {spec.output_shape()}, "
          f"{spec.num_weights()} weights, {spec.macs()/1e3:.1f}K MACs")
    print("accelerator table:")
    for shape in table:
        print(f"  {shape.name:<10s} {shape.in_channels:>3d}->{shape.out_channels:<3d} "
              f"k={shape.kernel_size} in={shape.input_size:<3d} macs={shape.macs}")
    out = model.forward(__import__("numpy").random.default_rng(0)
                        .standard_normal((2, 3, 16, 16)))
    print(f"built model forward: {out.shape}")

    # the JSON round-trips exactly — save it and run it like any config file:
    #   python -m repro.pipeline run custom_resnetlet.json
    path = Path(tempfile.mkdtemp()) / "custom_resnetlet.json"
    spec.save(path)
    assert WorkloadSpec.from_file(path) == spec
    print(f"saved spec to {path}")

    # or embed the spec inline in a scenario: the pipeline builds the model
    # from it AND registers its accelerator table under the spec name, so
    # compress -> export -> serve_eval -> accel_eval need no per-model code
    scenario = Scenario(
        name="custom-resnetlet",
        description="pipeline driven end to end by the JSON spec above",
        model=spec.name,
        workload_spec=SPEC_DICT,
        pipeline={
            "preset": "mvq",
            "base": {"k": 24, "max_kmeans_iterations": 10},
            "stages": ["group", "prune", "cluster", "quantize", "export",
                       "serve_eval", "accel_eval"],
            "serve": {"batch_size": 4, "num_samples": 8},
            "accelerator": {"setting": "EWS-CMS", "array_size": 64},
        },
    )
    result = run_scenario(scenario)
    accel = result.artifacts["accel_report"]
    serve = result.artifacts["serve_report"]
    print(f"compressed {result.compressed.compression_ratio():.1f}x, "
          f"serving max |diff| {serve['max_abs_diff']:.1e}, "
          f"accelerator {accel['runtime_ms']:.3f} ms/frame "
          f"@ {accel['efficiency_tops_w']:.2f} TOPS/W")


if __name__ == "__main__":
    main()
