"""Compress an object detector with MVQ (the paper's Mask-RCNN/COCO scenario).

Trains the simplified single-box detector on the synthetic detection task,
compresses its ResNet backbone with masked vector quantization, and
fine-tunes the codebooks against the detection loss — exercising the same
code path the paper uses for Mask-RCNN on COCO (Table 6), with the AP@0.25
surrogate metric.

Usage:  python examples/detection_compression.py
"""

from __future__ import annotations

from repro.core import CodebookFinetuner, LayerCompressionConfig, MVQCompressor
from repro.nn.data import SyntheticDetection
from repro.nn.models import simple_detector_mini
from repro.nn.models.detection import detection_ap, train_detector


def main() -> None:
    dataset = SyntheticDetection(num_samples=200, image_size=16, num_classes=3, seed=0)
    detector = simple_detector_mini(num_classes=3, seed=0)

    print("training dense detector ...")
    train_detector(detector, dataset, epochs=8, batch_size=32)
    baseline_ap = detection_ap(detector, dataset, iou_threshold=0.25)
    print(f"dense detector AP@0.25: {baseline_ap:.3f}")

    # detection/segmentation use the ASP-style pruning setup (Section 6.2):
    # one-shot magnitude masks, kept frozen while the codebook fine-tunes
    config = LayerCompressionConfig(k=32, d=8, n_keep=2, m=8)
    compressed = MVQCompressor(config).compress(detector)
    compressed.apply_to_model()
    print(f"compressed backbone: ratio={compressed.compression_ratio():.1f}x "
          f"sparsity={compressed.sparsity():.0%}")
    print(f"AP@0.25 before fine-tuning: {detection_ap(detector, dataset, 0.25):.3f}")

    finetuner = CodebookFinetuner(compressed, lr=3e-3)
    train_detector(detector, dataset, epochs=3, batch_size=32, hook=finetuner.step)
    final_ap = detection_ap(detector, dataset, iou_threshold=0.25)
    print(f"AP@0.25 after codebook fine-tuning: {final_ap:.3f} "
          f"(baseline {baseline_ap:.3f})")


if __name__ == "__main__":
    main()
